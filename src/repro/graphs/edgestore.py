"""Out-of-core edge stores: ``.npy``-backed, memmap-ready graph snapshots.

A store is a directory of seven files::

    meta.json          format name/version, n_nodes, n_arcs, directed,
                       index_dtype ("<i4" or "<i8")
    src.npy            arc tails,   CSR order (sorted by (src, dst))
    dst.npy            arc heads    — doubles as the CSR ``indices``
    weight.npy         float64      — doubles as the CSR ``data``
    csr_indptr.npy     n+1 row offsets
    csc_indices.npy    arc tails in CSC order (sorted by (dst, src))
    csc_data.npy       float64 weights in CSC order
    csc_indptr.npy     n+1 column offsets

Arcs are deduplicated (duplicate ``(src, dst)`` pairs sum their
weights, in input order) and exact-zero sums are dropped — the same COO
semantics as :meth:`WeightedDiGraph.from_arrays` and the paper's Sec. 3
"zero weight means no edge" convention.  Undirected stores hold both
directions of every off-diagonal edge, mirroring ``from_arrays``.

Index arrays are written in the dtype scipy itself would pick for the
matrix (int32 whenever ``max(n, nnz)`` fits, int64 beyond), which is
what lets ``sp.csr_matrix((data, indices, indptr))`` wrap the memmaps
**zero-copy**: the resulting matrix's ``data``/``indices``/``indptr``
share pages with the files, so a coloring run touches only the edge
segments its chunked kernels actually stream.

Ingestion is out-of-core too: :class:`EdgeStoreWriter` buffers appended
arc chunks up to ``chunk_arcs``, spills each as a lexsorted run, and
finalization performs a vectorized k-way external merge (block-at-a-time
``searchsorted`` cuts, ``np.add.reduceat`` group sums) — the full edge
list is never resident, and the dict-of-dicts adjacency never exists.

Ingestion is also **crash-safe**: spilled runs are recorded in a
journal (``<path>.ingest/journal.json``, written atomically after each
spill), the final arrays are staged in a sibling ``<path>.staging``
directory and committed with a single ``os.replace``, and ``meta.json``
carries a crc32 per array so :func:`verify_store` can prove a store
intact before a long coloring run trusts it.  A ``SIGKILL`` at any
point leaves either the previous store or a resumable work directory —
never a half-written store — and re-running the same ingest with
``resume=True`` skips already-journaled input chunks and produces a
store bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import zlib
from pathlib import Path
from typing import Any, Iterable

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError, StoreError
from repro.graphs.digraph import coerce_index_array
from repro.resilience.faults import inject

__all__ = [
    "EdgeStore",
    "EdgeStoreWriter",
    "NpyAppender",
    "ingest_arrays",
    "ingest_edgelist",
    "ingest_uniform_random",
    "memmap_descriptor",
    "open_descriptor",
    "verify_store",
]

FORMAT_NAME = "repro-edgestore"
FORMAT_VERSION = 1
META_FILE = "meta.json"
JOURNAL_FILE = "journal.json"
#: suffixes of the writer's sibling work/staging directories
INGEST_SUFFIX = ".ingest"
STAGING_SUFFIX = ".staging"

#: appended arcs buffered in RAM before a sorted run spills to disk
DEFAULT_CHUNK_ARCS = 8_000_000
#: arcs loaded per run per merge refill (doubled on demand when a single
#: duplicate key group outgrows it)
_MERGE_BLOCK = 1 << 20

_MAGIC = b"\x93NUMPY\x01\x00"
_INT32_MAX = np.iinfo(np.int32).max
#: packed (a, b) merge keys are ``a * n + b`` in int64, so n is bounded
#: by sqrt(2**63) — comfortably past every graph this package targets
_MAX_NODES = int(np.sqrt(2.0**63)) - 1


# ----------------------------------------------------------------------
# streaming .npy output
# ----------------------------------------------------------------------
class NpyAppender:
    """Streaming one-dimensional ``.npy`` writer.

    The header's shape field is written with fixed width, so the final
    element count can be patched in place on :meth:`close` — appended
    chunks stream straight to disk, nothing is buffered.
    """

    def __init__(self, path: Any, dtype: Any) -> None:
        self.path = Path(path)
        self.dtype = np.dtype(dtype)
        self.count = 0
        self._handle = open(self.path, "wb")
        self._handle.write(self._header(0))

    def _header(self, count: int) -> bytes:
        descr = np.lib.format.dtype_to_descr(self.dtype)
        # %-20d left-justifies the count with trailing spaces inside the
        # tuple (valid to literal_eval), keeping the header length
        # independent of the count so close() can overwrite in place.
        body = (
            "{'descr': %r, 'fortran_order': False, "
            "'shape': (%-20d,), }" % (descr, count)
        )
        unpadded = len(_MAGIC) + 2 + len(body) + 1
        body += " " * ((-unpadded) % 64)
        header = (body + "\n").encode("latin1")
        return _MAGIC + struct.pack("<H", len(header)) + header

    def append(self, values: np.ndarray) -> None:
        array = np.ascontiguousarray(values, dtype=self.dtype)
        array.tofile(self._handle)
        self.count += int(array.size)

    def close(self) -> None:
        if self._handle.closed:
            return
        self._handle.flush()
        self._handle.seek(0)
        self._handle.write(self._header(self.count))
        self._handle.close()

    def __enter__(self) -> "NpyAppender":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _crc32_file(path: Path, block: int = 1 << 20) -> str:
    """Streaming crc32 of a file, as ``"crc32:xxxxxxxx"``.

    crc32 is not cryptographic — the threat model is torn writes, bad
    disks, and truncation, not adversaries — and zlib's implementation
    streams at memory bandwidth, so checksumming never dominates ingest.
    """
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(block)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return f"crc32:{crc & 0xFFFFFFFF:08x}"


# ----------------------------------------------------------------------
# memmap introspection (shared with the process-pool executor)
# ----------------------------------------------------------------------
def _memmap_base(array: Any) -> np.memmap | None:
    # Walk to the ROOT memmap: a sliced memmap is itself an np.memmap
    # but inherits the parent's ``offset`` unadjusted, so only the
    # deepest memmap in the base chain pairs a data pointer with a
    # trustworthy file offset.
    found = None
    base = array
    while base is not None:
        if isinstance(base, np.memmap):
            found = base
        base = getattr(base, "base", None)
    return found


def memmap_descriptor(
    array: np.ndarray,
) -> tuple[str, str, tuple, int] | None:
    """``(path, dtype_str, shape, offset)`` when ``array`` is a
    contiguous view over a file-backed memmap, else ``None``.

    The descriptor is picklable and position-independent: any process
    can reopen the identical view with :func:`open_descriptor`, which is
    how the round executor shares graph snapshots with pool workers
    without copying them into shared memory.
    """
    base = _memmap_base(array)
    if base is None or getattr(base, "filename", None) is None:
        return None
    if not array.flags["C_CONTIGUOUS"]:
        return None
    delta = (
        array.__array_interface__["data"][0]
        - base.__array_interface__["data"][0]
    )
    if delta < 0:
        return None
    return (
        str(base.filename),
        array.dtype.str,
        tuple(array.shape),
        int(base.offset + delta),
    )


def open_descriptor(descriptor: tuple[str, str, tuple, int]) -> np.memmap:
    """Reopen a :func:`memmap_descriptor` as a read-only memmap."""
    path, dtype, shape, offset = descriptor
    return np.memmap(
        path,
        dtype=np.dtype(dtype),
        mode="r",
        shape=tuple(shape),
        offset=int(offset),
    )


# ----------------------------------------------------------------------
# external merge
# ----------------------------------------------------------------------
class _RunReader:
    """Buffered block reader over one spilled (k1, k2, payload) run."""

    def __init__(self, k1_path: Path, k2_path: Path, w_path: Path, n: int):
        self._k1 = np.load(k1_path, mmap_mode="r")
        self._k2 = np.load(k2_path, mmap_mode="r")
        self._w = np.load(w_path, mmap_mode="r")
        self._n = n
        self._pos = 0
        self.keys = np.empty(0, dtype=np.int64)
        self.payload = np.empty(0, dtype=np.float64)

    @property
    def file_remaining(self) -> int:
        return int(self._k1.size) - self._pos

    def refill(self, block: int) -> None:
        while self.keys.size < block and self.file_remaining:
            take = min(block, self.file_remaining)
            stop = self._pos + take
            packed = (
                self._k1[self._pos:stop].astype(np.int64) * self._n
                + self._k2[self._pos:stop]
            )
            self.keys = np.concatenate([self.keys, packed])
            self.payload = np.concatenate(
                [self.payload, np.asarray(self._w[self._pos:stop])]
            )
            self._pos = stop

    def cut(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        head = (self.keys[:count], self.payload[:count])
        self.keys = self.keys[count:]
        self.payload = self.payload[count:]
        return head


def _merge_runs(run_files: list, n: int, emit, block: int = _MERGE_BLOCK):
    """K-way merge of lexsorted runs, vectorized block at a time.

    ``emit(keys, payload)`` receives globally sorted blocks whose key
    groups are complete (no group spans two emits), with input order
    preserved among equal keys — the invariant the dedup summer needs.
    """
    readers = [_RunReader(*paths, n) for paths in run_files]
    while True:
        for reader in readers:
            reader.refill(block)
        if not any(reader.keys.size for reader in readers):
            break
        # Keys strictly below every unread datum are globally complete;
        # a run read to EOF no longer bounds anything.
        safe = None
        for reader in readers:
            if reader.file_remaining:
                last = int(reader.keys[-1])
                safe = last if safe is None else min(safe, last)
        if safe is None:
            cuts = [reader.keys.size for reader in readers]
        else:
            cuts = [
                int(np.searchsorted(reader.keys, safe, side="left"))
                for reader in readers
            ]
        if not sum(cuts):
            # One duplicate-key group outgrew the block: widen and retry.
            block *= 2
            continue
        parts = [
            reader.cut(count)
            for reader, count in zip(readers, cuts)
            if count
        ]
        keys = np.concatenate([part[0] for part in parts])
        payload = np.concatenate([part[1] for part in parts])
        order = np.argsort(keys, kind="stable")
        emit(keys[order], payload[order])


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------
class EdgeStoreWriter:
    """Chunked, external-sort ingestion into an on-disk edge store.

    Feed arc chunks with :meth:`append`; each buffered ``chunk_arcs``
    spills as a lexsorted run, and :meth:`finalize` merges the runs into
    deduplicated CSR-ordered arrays plus the CSC companion sort.  Peak
    memory is O(chunk_arcs + n), independent of the total arc count.

    All intermediate state lives in sibling directories — runs and the
    ingest journal in ``<path>.ingest``, the final arrays in
    ``<path>.staging`` — and the target path is only ever touched by
    the atomic commit at the end of :meth:`finalize`.  With
    ``resume=True`` a writer re-attaches to an interrupted ingest's
    journal: the caller replays the *same* input chunk sequence, and
    :meth:`append` skips every chunk the journal proves is already in
    a spilled run, so only unspilled input is re-processed and the
    final store is bit-identical to an uninterrupted ingest.
    """

    def __init__(
        self,
        path: Any,
        *,
        directed: bool = True,
        n_nodes: int | None = None,
        chunk_arcs: int = DEFAULT_CHUNK_ARCS,
        overwrite: bool = False,
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.directed = bool(directed)
        self.declared_n = None if n_nodes is None else int(n_nodes)
        if self.declared_n is not None and self.declared_n < 0:
            raise GraphError(f"n_nodes must be >= 0, got {n_nodes}")
        self.chunk_arcs = int(chunk_arcs)
        if self.chunk_arcs < 2:
            raise GraphError(
                f"chunk_arcs must be >= 2, got {chunk_arcs}"
            )
        self._work = self.path.with_name(self.path.name + INGEST_SUFFIX)
        self._stage = self.path.with_name(self.path.name + STAGING_SUFFIX)
        self._journal_path = self._work / JOURNAL_FILE
        if resume:
            if not self._journal_path.exists():
                raise StoreError(
                    f"nothing to resume at {self.path}: no ingest journal "
                    f"in {self._work}"
                )
        elif (self.path / META_FILE).exists() and not overwrite:
            raise GraphError(
                f"edge store already exists at {self.path} "
                "(pass overwrite=True to replace it)"
            )
        self._buffer: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._buffered = 0
        self._runs: list[tuple[Path, Path, Path]] = []
        self._appended = 0  # caller-facing arc count (pre-mirror)
        self._stored = 0  # arcs written to runs (post-mirror)
        self._max_node = -1
        self._closed = False
        #: appended arcs still to be skipped during a resume replay
        self._replay_remaining = 0
        if resume:
            self._load_journal()
        else:
            if self._work.exists():
                shutil.rmtree(self._work)
            self._work.mkdir(parents=True)

    # -- journal ---------------------------------------------------------
    def _journal_state(self) -> dict:
        return {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "directed": self.directed,
            "n_nodes": self.declared_n,
            "chunk_arcs": self.chunk_arcs,
            "appended": self._appended,
            "stored": self._stored,
            "max_node": self._max_node,
            "runs": [paths[0].name[:-len(".k1.npy")]
                     for paths in self._runs],
        }

    def _write_journal(self) -> None:
        # Atomic: a crash mid-write leaves the previous journal, whose
        # run list still matches files on disk (extra run files are
        # discarded as orphans on resume).
        temp = self._journal_path.with_suffix(".json.tmp")
        temp.write_text(json.dumps(self._journal_state(), indent=2) + "\n")
        os.replace(temp, self._journal_path)

    def _load_journal(self) -> None:
        try:
            journal = json.loads(self._journal_path.read_text())
        except ValueError as exc:
            raise StoreError(
                f"corrupt ingest journal {self._journal_path}: {exc}"
            ) from exc
        for key, mine in (
            ("directed", self.directed),
            ("n_nodes", self.declared_n),
            ("chunk_arcs", self.chunk_arcs),
        ):
            theirs = journal.get(key)
            if theirs != mine:
                raise StoreError(
                    f"cannot resume {self.path}: journaled {key}="
                    f"{theirs!r} does not match requested {mine!r}"
                )
        run_tags = list(journal.get("runs", []))
        for tag in run_tags:
            paths = tuple(
                self._work / f"{tag}.{stem}.npy"
                for stem in ("k1", "k2", "w")
            )
            missing = [p.name for p in paths if not p.exists()]
            if missing:
                raise StoreError(
                    f"cannot resume {self.path}: journaled run files "
                    f"missing from {self._work}: {missing}"
                )
            self._runs.append(paths)
        # Orphans: run/csc spills newer than the journal (the crash
        # landed between a spill and its journal record, or mid-merge).
        # The replay regenerates them deterministically.
        keep = {p.name for paths in self._runs for p in paths}
        keep.add(JOURNAL_FILE)
        for entry in self._work.iterdir():
            if entry.name not in keep:
                entry.unlink()
        self._appended = int(journal["appended"])
        self._stored = int(journal["stored"])
        self._max_node = int(journal["max_node"])
        self._replay_remaining = self._appended

    # -- input ----------------------------------------------------------
    def append(
        self,
        src: Any,
        dst: Any,
        weight: Any | None = None,
    ) -> None:
        """Append parallel arc arrays (chunk of the edge list)."""
        if self._closed:
            raise GraphError("edge store writer is already finalized")
        src = coerce_index_array(src, "src")
        dst = coerce_index_array(dst, "dst")
        if src.size != dst.size:
            raise GraphError(
                f"src and dst must match, got {src.size} vs {dst.size}"
            )
        if weight is None:
            weight = np.ones(src.size, dtype=np.float64)
        else:
            weight = np.asarray(weight, dtype=np.float64).ravel()
            if weight.size != src.size:
                raise GraphError(
                    f"weight must match src/dst, got {weight.size} arcs "
                    f"vs {src.size}"
                )
        if not src.size:
            return
        if self._replay_remaining:
            # Resume replay: this chunk is already inside a journaled
            # run.  Skipping relies on the caller re-feeding the exact
            # same chunk sequence — a chunk straddling the journaled
            # frontier means the input changed, which would silently
            # corrupt the store, so refuse instead.
            if src.size > self._replay_remaining:
                raise StoreError(
                    f"resume replay mismatch at {self.path}: chunk of "
                    f"{src.size} arcs straddles the journaled frontier "
                    f"({self._replay_remaining} arcs short); re-feed the "
                    f"identical input chunks or start over"
                )
            self._replay_remaining -= src.size
            return
        self._validate(src, dst)
        self._appended += src.size
        if not self.directed:
            off = src != dst
            src, dst, weight = (
                np.concatenate([src, dst[off]]),
                np.concatenate([dst, src[off]]),
                np.concatenate([weight, weight[off]]),
            )
        self._max_node = max(
            self._max_node, int(src.max()), int(dst.max())
        )
        self._buffer.append((src, dst, weight))
        self._buffered += src.size
        self._stored += src.size
        if self._buffered >= self.chunk_arcs:
            self._flush_run()

    def _validate(self, src: np.ndarray, dst: np.ndarray) -> None:
        n = self.declared_n
        low = min(int(src.min()), int(dst.min()))
        high = max(int(src.max()), int(dst.max()))
        if low >= 0 and (n is None or high < n):
            return
        bad = (src < 0) | (dst < 0)
        if n is not None:
            bad |= (src >= n) | (dst >= n)
        arc = int(np.flatnonzero(bad)[0])
        bound = "inf" if n is None else n
        raise GraphError(
            f"edge endpoints out of range [0, {bound}): "
            f"arc {self._appended + arc}: {src[arc]} -> {dst[arc]}"
        )

    def _flush_run(self) -> None:
        if not self._buffered:
            return
        inject("edgestore.run.spill", run=len(self._runs))
        src = np.concatenate([part[0] for part in self._buffer])
        dst = np.concatenate([part[1] for part in self._buffer])
        weight = np.concatenate([part[2] for part in self._buffer])
        self._buffer.clear()
        self._buffered = 0
        order = np.lexsort((dst, src))  # stable: input order on ties
        tag = f"run_{len(self._runs):05d}"
        paths = tuple(
            self._work / f"{tag}.{stem}.npy"
            for stem in ("k1", "k2", "w")
        )
        np.save(paths[0], src[order])
        np.save(paths[1], dst[order])
        np.save(paths[2], weight[order])
        self._runs.append(paths)
        inject("edgestore.run.journal", run=len(self._runs) - 1)
        self._write_journal()

    # -- output ---------------------------------------------------------
    def finalize(self) -> "EdgeStore":
        """Merge the spilled runs into the final store; return it open.

        Everything is built in the staging directory and lands at the
        target through :meth:`_commit_stage`'s single ``os.replace`` —
        readers either see the previous store or the complete new one.
        """
        if self._closed:
            raise GraphError("edge store writer is already finalized")
        if self._replay_remaining:
            raise StoreError(
                f"resume replay incomplete at {self.path}: "
                f"{self._replay_remaining} journaled arcs were never "
                f"re-fed; the input is shorter than the journaled ingest"
            )
        self._flush_run()
        n = (
            self.declared_n
            if self.declared_n is not None
            else self._max_node + 1
        )
        if n > _MAX_NODES:
            raise GraphError(
                f"edge store supports at most {_MAX_NODES} nodes, got {n}"
            )
        if self._stage.exists():
            # Stale stage from an interrupted finalize: the merge is a
            # deterministic function of the journaled runs, so rebuild.
            shutil.rmtree(self._stage)
        self._stage.mkdir(parents=True)
        # Upper bound for the index dtype: dedup only shrinks nnz.  The
        # rare overshoot (int64 picked, deduped nnz fits int32) is fixed
        # by a downcast pass below so the store always matches scipy's
        # preferred dtype — the zero-copy wrap condition.
        index_dtype = (
            np.dtype(np.int32)
            if max(n, self._stored) <= _INT32_MAX
            else np.dtype(np.int64)
        )
        src_counts = np.zeros(n, dtype=np.int64)
        dst_counts = np.zeros(n, dtype=np.int64)
        src_out = NpyAppender(self._stage / "src.npy", index_dtype)
        dst_out = NpyAppender(self._stage / "dst.npy", index_dtype)
        weight_out = NpyAppender(self._stage / "weight.npy", np.float64)

        def emit_dedup(keys: np.ndarray, weights: np.ndarray) -> None:
            inject("edgestore.merge.chunk", arcs=int(keys.size))
            starts = np.flatnonzero(
                np.concatenate(([True], keys[1:] != keys[:-1]))
            )
            sums = np.add.reduceat(weights, starts)
            unique = keys[starts]
            keep = sums != 0.0
            unique, sums = unique[keep], sums[keep]
            src = unique // n
            dst = unique - src * n
            src_out.append(src)
            dst_out.append(dst)
            weight_out.append(sums)
            src_counts[:] += np.bincount(src, minlength=n)
            dst_counts[:] += np.bincount(dst, minlength=n)

        if n and self._runs:
            _merge_runs(self._runs, n, emit_dedup)
        src_out.close()
        dst_out.close()
        weight_out.close()
        nnz = src_out.count
        if (
            index_dtype == np.int64
            and max(n, nnz) <= _INT32_MAX
        ):
            index_dtype = np.dtype(np.int32)
            for stem in ("src", "dst"):
                self._downcast(self._stage / f"{stem}.npy", index_dtype)
        indptr = np.zeros(n + 1, dtype=index_dtype)
        np.cumsum(src_counts, out=indptr[1:])
        np.save(self._stage / "csr_indptr.npy", indptr)

        self._build_csc(n, nnz, index_dtype, dst_counts)

        meta = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "n_nodes": int(n),
            "n_arcs": int(nnz),
            "directed": self.directed,
            "index_dtype": index_dtype.str,
            "checksums": {
                f"{stem}.npy": _crc32_file(self._stage / f"{stem}.npy")
                for stem in EdgeStore._STEMS
            },
        }
        (self._stage / META_FILE).write_text(
            json.dumps(meta, indent=2) + "\n"
        )
        self._commit_stage()
        shutil.rmtree(self._work, ignore_errors=True)
        self._closed = True
        return EdgeStore(self.path)

    def _commit_stage(self) -> None:
        """Atomically swap the staged directory into the target path.

        ``os.replace`` cannot overwrite a non-empty directory, so a
        pre-existing store is renamed aside first.  Every intermediate
        state is recoverable: before the final replace the journal and
        runs still exist (resume rebuilds the stage), and a leftover
        ``.old`` directory is swept by the next commit.
        """
        inject("edgestore.commit")
        old = self.path.with_name(self.path.name + ".old")
        if old.exists():
            shutil.rmtree(old)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            os.replace(self.path, old)
        os.replace(self._stage, self.path)
        shutil.rmtree(old, ignore_errors=True)

    def _downcast(self, path: Path, dtype: np.dtype) -> None:
        wide = np.load(path, mmap_mode="r")
        temp = path.with_suffix(".tmp.npy")
        with NpyAppender(temp, dtype) as out:
            for start in range(0, wide.size, self.chunk_arcs):
                out.append(wide[start:start + self.chunk_arcs])
        del wide
        temp.replace(path)

    def _build_csc(
        self,
        n: int,
        nnz: int,
        index_dtype: np.dtype,
        dst_counts: np.ndarray,
    ) -> None:
        """Second external sort of the final arcs, by (dst, src)."""
        runs: list[tuple[Path, Path, Path]] = []
        if nnz:
            src = np.load(self._stage / "src.npy", mmap_mode="r")
            dst = np.load(self._stage / "dst.npy", mmap_mode="r")
            weight = np.load(self._stage / "weight.npy", mmap_mode="r")
            for index, start in enumerate(
                range(0, nnz, self.chunk_arcs)
            ):
                stop = min(start + self.chunk_arcs, nnz)
                chunk_src = np.asarray(src[start:stop])
                chunk_dst = np.asarray(dst[start:stop])
                chunk_w = np.asarray(weight[start:stop])
                order = np.lexsort((chunk_src, chunk_dst))
                tag = f"csc_{index:05d}"
                paths = tuple(
                    self._work / f"{tag}.{stem}.npy"
                    for stem in ("k1", "k2", "w")
                )
                np.save(paths[0], chunk_dst[order])
                np.save(paths[1], chunk_src[order])
                np.save(paths[2], chunk_w[order])
                runs.append(paths)
            del src, dst, weight
        indices_out = NpyAppender(
            self._stage / "csc_indices.npy", index_dtype
        )
        data_out = NpyAppender(self._stage / "csc_data.npy", np.float64)

        def emit_csc(keys: np.ndarray, weights: np.ndarray) -> None:
            inject("edgestore.csc.chunk", arcs=int(keys.size))
            indices_out.append(keys % n)  # key = dst * n + src
            data_out.append(weights)

        if n and runs:
            _merge_runs(runs, n, emit_csc)
        indices_out.close()
        data_out.close()
        indptr = np.zeros(n + 1, dtype=index_dtype)
        np.cumsum(dst_counts, out=indptr[1:])
        np.save(self._stage / "csc_indptr.npy", indptr)

    def __enter__(self) -> "EdgeStoreWriter":
        return self

    def __exit__(self, exc_type: Any, *exc: Any) -> None:
        if exc_type is None and not self._closed:
            self.finalize()


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------
class EdgeStore:
    """An on-disk edge store, ready for memmapped or resident loading."""

    _STEMS = (
        "src", "dst", "weight",
        "csr_indptr", "csc_indptr", "csc_indices", "csc_data",
    )

    def __init__(self, path: Any) -> None:
        self.path = Path(path)
        meta_path = self.path / META_FILE
        if not meta_path.exists():
            raise GraphError(f"no edge store at {self.path}")
        try:
            meta = json.loads(meta_path.read_text())
        except ValueError as exc:
            raise GraphError(
                f"corrupt edge store metadata at {meta_path}: {exc}"
            ) from exc
        if meta.get("format") != FORMAT_NAME:
            raise GraphError(
                f"{meta_path} is not a {FORMAT_NAME} store"
            )
        if int(meta.get("version", -1)) != FORMAT_VERSION:
            raise GraphError(
                f"unsupported edge store version {meta.get('version')!r} "
                f"(expected {FORMAT_VERSION})"
            )
        self.meta = meta
        self.n_nodes = int(meta["n_nodes"])
        self.n_arcs = int(meta["n_arcs"])
        self.directed = bool(meta["directed"])
        self.index_dtype = np.dtype(meta["index_dtype"])

    def _load(self, stem: str, mmap: bool) -> np.ndarray:
        return np.load(
            self.path / f"{stem}.npy", mmap_mode="r" if mmap else None
        )

    def arc_arrays(
        self, mmap: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(src, dst, weight)`` in CSR order."""
        return (
            self._load("src", mmap),
            self._load("dst", mmap),
            self._load("weight", mmap),
        )

    def csr_arrays(
        self, mmap: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, indices, data)`` — dst/weight double as the CSR."""
        return (
            self._load("csr_indptr", mmap),
            self._load("dst", mmap),
            self._load("weight", mmap),
        )

    def csc_arrays(
        self, mmap: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            self._load("csc_indptr", mmap),
            self._load("csc_indices", mmap),
            self._load("csc_data", mmap),
        )

    def csr_matrix(self, mmap: bool = True) -> sp.csr_matrix:
        """The adjacency as CSR; zero-copy over the files when ``mmap``."""
        indptr, indices, data = self.csr_arrays(mmap)
        shape = (self.n_nodes, self.n_nodes)
        matrix = sp.csr_matrix((data, indices, indptr), shape=shape)
        matrix.has_sorted_indices = True  # sorted by construction
        return matrix

    def csc_matrix(self, mmap: bool = True) -> sp.csc_matrix:
        indptr, indices, data = self.csc_arrays(mmap)
        shape = (self.n_nodes, self.n_nodes)
        matrix = sp.csc_matrix((data, indices, indptr), shape=shape)
        matrix.has_sorted_indices = True
        return matrix

    def array_nbytes(self) -> int:
        """Bytes the seven arrays would occupy resident (file payloads)."""
        total = 0
        for stem in self._STEMS:
            array = np.load(self.path / f"{stem}.npy", mmap_mode="r")
            total += int(array.nbytes)
        return total

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"<EdgeStore {kind} n_nodes={self.n_nodes} "
            f"n_arcs={self.n_arcs} at {self.path}>"
        )


# ----------------------------------------------------------------------
# verification
# ----------------------------------------------------------------------
def verify_store(path: Any) -> dict:
    """Prove an on-disk store intact; raise :class:`StoreError` if not.

    Checks, cheapest first: the metadata parses and names this format;
    all seven arrays are present, load as ``.npy``, and have the
    lengths the metadata implies; both indptr arrays are monotone with
    the right endpoints; and every file's crc32 matches the checksum
    recorded at ingest.  Returns a report dict (``path``, ``n_nodes``,
    ``n_arcs``, ``checked`` file names, ``checksums_verified``) on
    success.  Stores written before checksums existed verify
    structurally, with ``checksums_verified=False``.
    """
    store_path = Path(path)
    problems: list[str] = []
    # EdgeStore's constructor is the metadata gate; re-raise its
    # complaints under the narrower StoreError for CLI mapping.
    try:
        store = EdgeStore(store_path)
    except GraphError as exc:
        raise StoreError(str(exc)) from exc
    expected_sizes = {
        "src": store.n_arcs,
        "dst": store.n_arcs,
        "weight": store.n_arcs,
        "csr_indptr": store.n_nodes + 1,
        "csc_indptr": store.n_nodes + 1,
        "csc_indices": store.n_arcs,
        "csc_data": store.n_arcs,
    }
    arrays: dict[str, np.ndarray] = {}
    for stem, expected in expected_sizes.items():
        file = store_path / f"{stem}.npy"
        if not file.exists():
            problems.append(f"{file.name}: missing")
            continue
        try:
            array = np.load(file, mmap_mode="r")
        except ValueError as exc:
            problems.append(f"{file.name}: unreadable ({exc})")
            continue
        if array.ndim != 1:
            problems.append(
                f"{file.name}: expected 1-D array, got shape {array.shape}"
            )
        elif array.size != expected:
            problems.append(
                f"{file.name}: expected {expected} entries, "
                f"found {array.size}"
            )
        else:
            arrays[stem] = array
    for stem in ("csr_indptr", "csc_indptr"):
        indptr = arrays.get(stem)
        if indptr is None or not indptr.size:
            continue
        if int(indptr[0]) != 0 or int(indptr[-1]) != store.n_arcs:
            problems.append(
                f"{stem}.npy: endpoints ({indptr[0]}, {indptr[-1]}) "
                f"!= (0, {store.n_arcs})"
            )
        elif indptr.size > 1 and bool(np.any(np.diff(indptr) < 0)):
            problems.append(f"{stem}.npy: offsets are not monotone")
    arrays.clear()
    checksums = store.meta.get("checksums") or {}
    for name, recorded in sorted(checksums.items()):
        file = store_path / name
        if not file.exists():
            continue  # already reported as missing above
        actual = _crc32_file(file)
        if actual != recorded:
            problems.append(
                f"{name}: checksum mismatch (recorded {recorded}, "
                f"actual {actual})"
            )
    if problems:
        raise StoreError(
            f"edge store at {store_path} failed verification: "
            + "; ".join(problems)
        )
    return {
        "path": str(store_path),
        "n_nodes": store.n_nodes,
        "n_arcs": store.n_arcs,
        "directed": store.directed,
        "checked": sorted(f"{stem}.npy" for stem in expected_sizes),
        "checksums_verified": bool(checksums),
    }


# ----------------------------------------------------------------------
# ingestion fronts
# ----------------------------------------------------------------------
def ingest_arrays(
    path: Any,
    src: Any,
    dst: Any,
    weight: Any | None = None,
    *,
    n_nodes: int | None = None,
    directed: bool = True,
    chunk_arcs: int = DEFAULT_CHUNK_ARCS,
    overwrite: bool = False,
    resume: bool = False,
) -> EdgeStore:
    """One-shot ingestion of parallel arc arrays (chunked internally)."""
    src = coerce_index_array(src, "src")
    dst = coerce_index_array(dst, "dst")
    writer = EdgeStoreWriter(
        path,
        directed=directed,
        n_nodes=n_nodes,
        chunk_arcs=chunk_arcs,
        overwrite=overwrite,
        resume=resume,
    )
    weights = (
        None if weight is None
        else np.asarray(weight, dtype=np.float64).ravel()
    )
    for start in range(0, max(src.size, 1), max(chunk_arcs, 1)):
        stop = start + chunk_arcs
        writer.append(
            src[start:stop],
            dst[start:stop],
            None if weights is None else weights[start:stop],
        )
    return writer.finalize()


def ingest_edgelist(
    path: Any,
    edgelist: Any,
    *,
    directed: bool = True,
    n_nodes: int | None = None,
    comments: str = "#",
    chunk_lines: int = 1_000_000,
    chunk_arcs: int = DEFAULT_CHUNK_ARCS,
    overwrite: bool = False,
    resume: bool = False,
) -> EdgeStore:
    """Stream a whitespace-separated ``src dst [weight]`` text file.

    Node ids must be integers (the store is index-addressed); lines
    starting with ``comments`` and blank lines are skipped.  The file is
    parsed in ``chunk_lines`` batches, so arbitrarily large edge lists
    ingest in bounded memory.  With ``resume=True`` an interrupted
    ingest of the *same file with the same options* picks up from its
    journal instead of re-sorting everything (parsing is redone — the
    journal records sorted runs, not text offsets).
    """
    writer = EdgeStoreWriter(
        path,
        directed=directed,
        n_nodes=n_nodes,
        chunk_arcs=chunk_arcs,
        overwrite=overwrite,
        resume=resume,
    )
    src: list[int] = []
    dst: list[int] = []
    weight: list[float] = []

    def flush() -> None:
        if src:
            writer.append(
                np.asarray(src, dtype=np.int64),
                np.asarray(dst, dtype=np.int64),
                np.asarray(weight, dtype=np.float64),
            )
            src.clear()
            dst.clear()
            weight.clear()

    with open(edgelist, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            text = line.strip()
            if not text or text.startswith(comments):
                continue
            parts = text.split()
            if len(parts) not in (2, 3):
                raise GraphError(
                    f"{edgelist}:{line_no}: expected 'src dst [weight]', "
                    f"got {text!r}"
                )
            try:
                src.append(int(parts[0]))
                dst.append(int(parts[1]))
                weight.append(
                    float(parts[2]) if len(parts) == 3 else 1.0
                )
            except ValueError as exc:
                raise GraphError(
                    f"{edgelist}:{line_no}: {exc}"
                ) from exc
            if len(src) >= chunk_lines:
                flush()
    flush()
    return writer.finalize()


def ingest_uniform_random(
    path: Any,
    n_nodes: int,
    out_degree: int,
    *,
    seed: int = 0,
    chunk_nodes: int = 500_000,
    chunk_arcs: int = DEFAULT_CHUNK_ARCS,
    overwrite: bool = False,
    resume: bool = False,
) -> EdgeStore:
    """Stream-ingest the ``uniform_random_digraph`` family at any scale.

    Same arc model as :func:`repro.graphs.generators.uniform_random_digraph`
    — ``out_degree`` draws per node, uniform heads, self-loops dropped,
    unit weights (duplicate draws sum) — but generated chunk by chunk,
    so a 100M-arc graph is ingested without ever holding its edge list.
    """
    rng = np.random.default_rng(seed)
    writer = EdgeStoreWriter(
        path,
        directed=True,
        n_nodes=n_nodes,
        chunk_arcs=chunk_arcs,
        overwrite=overwrite,
        resume=resume,
    )
    for start in range(0, n_nodes, chunk_nodes):
        stop = min(start + chunk_nodes, n_nodes)
        src = np.repeat(
            np.arange(start, stop, dtype=np.int64), out_degree
        )
        dst = rng.integers(0, n_nodes, size=src.size, dtype=np.int64)
        keep = src != dst
        writer.append(src[keep], dst[keep])
    return writer.finalize()
