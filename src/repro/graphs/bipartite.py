"""Weighted bipartite graphs ``(X, Y, w)`` (Sec. 3, Definition 1).

The LP reduction views the extended constraint matrix as a bipartite graph
between rows and columns; the max-flow theory (Theorem 6) works with the
bipartite block between two color classes.  This class is a thin, explicit
wrapper over a scipy sparse matrix with the handful of aggregate-weight
operations the theory needs (``w(U, V)``, row/column sums, biregularity
checks).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError


class BipartiteGraph:
    """A weighted bipartite graph stored as an ``|X| x |Y|`` sparse matrix."""

    def __init__(self, matrix: sp.spmatrix | np.ndarray) -> None:
        self.matrix = sp.csr_matrix(matrix, dtype=np.float64)

    @property
    def n_left(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_right(self) -> int:
        return self.matrix.shape[1]

    @property
    def n_edges(self) -> int:
        return int(self.matrix.nnz)

    def weight(self, x: int, y: int) -> float:
        return float(self.matrix[x, y])

    def total_weight(self) -> float:
        """``w(X, Y)``: the sum of all edge weights."""
        return float(self.matrix.sum())

    def block_weight(self, left: Sequence[int], right: Sequence[int]) -> float:
        """``w(U, V)`` of Eq. (1): total weight from ``U`` to ``V``."""
        sub = self.matrix[np.asarray(left, dtype=np.intp)][
            :, np.asarray(right, dtype=np.intp)
        ]
        return float(sub.sum())

    def row_sums(self) -> np.ndarray:
        """``w(x, Y)`` for every left node ``x``."""
        return np.asarray(self.matrix.sum(axis=1)).ravel()

    def col_sums(self) -> np.ndarray:
        """``w(X, y)`` for every right node ``y``."""
        return np.asarray(self.matrix.sum(axis=0)).ravel()

    def is_biregular(self, tol: float = 1e-9) -> bool:
        """True when all row sums agree and all column sums agree.

        This is the ``(a, b)``-biregularity of Sec. 3.1 (with weights).
        """
        rows = self.row_sums()
        cols = self.col_sums()
        return bool(
            (rows.size == 0 or np.ptp(rows) <= tol)
            and (cols.size == 0 or np.ptp(cols) <= tol)
        )

    def regularity_error(self) -> float:
        """Max spread of row sums and column sums (0 iff biregular)."""
        spreads = []
        rows = self.row_sums()
        cols = self.col_sums()
        if rows.size:
            spreads.append(float(np.ptp(rows)))
        if cols.size:
            spreads.append(float(np.ptp(cols)))
        return max(spreads) if spreads else 0.0

    def transpose(self) -> "BipartiteGraph":
        return BipartiteGraph(self.matrix.T)

    @classmethod
    def biregular(cls, n_left: int, n_right: int, out_degree: int) -> "BipartiteGraph":
        """Unit-weight biregular graph via round-robin wiring.

        Left node ``i`` connects to ``out_degree`` consecutive right nodes
        starting at ``i * out_degree (mod n_right)``.  Requires
        ``n_left * out_degree`` to be a multiple of ``n_right`` so the
        in-degree ``b = n_left * out_degree / n_right`` is integral.
        """
        if out_degree > n_right:
            raise GraphError(
                f"out_degree {out_degree} exceeds right side size {n_right}"
            )
        if (n_left * out_degree) % n_right != 0:
            raise GraphError(
                "biregular graph needs n_left * out_degree divisible by n_right"
            )
        rows = np.repeat(np.arange(n_left), out_degree)
        cols = (
            np.arange(n_left * out_degree, dtype=np.int64) % n_right
        )
        data = np.ones(n_left * out_degree)
        matrix = sp.csr_matrix((data, (rows, cols)), shape=(n_left, n_right))
        return cls(matrix)

    def __repr__(self) -> str:
        return (
            f"<BipartiteGraph {self.n_left}x{self.n_right} "
            f"n_edges={self.n_edges}>"
        )
