"""A weighted directed graph tailored to the coloring algorithms.

Design notes
------------
The coloring engine (``repro.core``) works on contiguous integer node ids
``0..n-1`` and a scipy CSR adjacency matrix.  :class:`WeightedDiGraph`
therefore keeps a dict-of-dicts adjacency for cheap construction and
mutation, plus lazily-built, cached CSR/CSC snapshots for the vectorized
kernels.  Mutations invalidate the cache.

Bulk construction goes the other way: :meth:`WeightedDiGraph.from_arrays`
builds the CSR snapshot directly from ``(src, dst, weight)`` arrays and
defers the dict-of-dicts (and, for default integer labels, the label
table) until a mutation or per-node query actually needs them.  The
vectorized pipeline — generators, coloring, solvers — runs entirely off
the CSR/CSC snapshots, so million-node graphs never pay per-edge dict
insertion.

Node labels may be arbitrary hashable objects; the label <-> index mapping
is maintained internally.  Undirected graphs are represented by storing both
edge directions and setting ``directed=False`` for bookkeeping (this makes
every algorithm in the package uniform over both cases, matching the paper's
treatment in Sec. 3).
"""

from __future__ import annotations

import warnings
from typing import Any, Hashable, Iterable, Iterator, Mapping, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError

EdgeTriple = Tuple[Hashable, Hashable, float]


def coerce_index_array(values: Any, name: str) -> np.ndarray:
    """Coerce node-index input to a flat int64 array, loudly.

    A bare ``np.asarray(values, dtype=np.int64)`` silently wraps uint64
    values past ``2**63``, truncates fractional floats, and folds NaN to
    ``INT64_MIN`` — all of which used to surface much later as bogus
    "out of range" endpoints (or worse, as valid-looking wrong arcs).
    Instead, coerce explicitly and verify the round trip, naming the
    first offending arc in the error.
    """
    array = np.asarray(values)
    if array.dtype == np.int64:
        return array.ravel()
    if array.dtype == object or array.dtype.kind in "US":
        # Let numpy's own conversion errors surface for non-numeric
        # input; object arrays of ints coerce losslessly.
        return np.asarray(array, dtype=np.int64).ravel()
    flat = array.ravel()
    with warnings.catch_warnings():
        # NaN/inf casts warn before the round-trip check below catches
        # them with a better message.
        warnings.simplefilter("ignore", RuntimeWarning)
        try:
            coerced = flat.astype(np.int64)
        except (ValueError, OverflowError, TypeError) as exc:
            raise GraphError(
                f"{name} indices are not representable as int64: {exc}"
            ) from exc
    with np.errstate(invalid="ignore"):
        mismatch = coerced != flat
    if mismatch.any():
        arc = int(np.flatnonzero(mismatch)[0])
        offender = flat[arc]
        offender = offender.item() if hasattr(offender, "item") else offender
        raise GraphError(
            f"{name} indices are not representable as int64: arc {arc} "
            f"has {name} = {offender!r}"
        )
    return coerced


class WeightedDiGraph:
    """Weighted directed graph with contiguous internal indices.

    Parameters
    ----------
    directed:
        When ``False``, :meth:`add_edge` stores both directions so the
        adjacency matrix is symmetric.  Self-loops are stored once.
    """

    def __init__(self, directed: bool = True) -> None:
        self.directed = directed
        self._n = 0
        #: ``None`` on array-built graphs until a label is asked for —
        #: identity labels ``0..n-1`` are served without the table.
        self._labels: list[Hashable] | None = []
        self._index: dict[Hashable, int] | None = {}
        #: ``None`` on array-built graphs until a mutation or per-node
        #: query materializes the dicts from the CSR/CSC snapshots.
        self._succ: list[dict[int, float]] | None = []
        self._pred: list[dict[int, float]] | None = []
        self._csr: sp.csr_matrix | None = None
        self._csc: sp.csc_matrix | None = None
        self._listeners: list[Any] = []

    # ------------------------------------------------------------------
    # lazy materialization (array-built graphs)
    # ------------------------------------------------------------------
    def _ensure_labels(self) -> None:
        if self._labels is None:
            self._labels = list(range(self._n))
            self._index = {i: i for i in range(self._n)}

    def _ensure_adjacency(self) -> None:
        if self._succ is not None:
            return
        csr = self.to_csr()
        csc = self.to_csc()
        self._succ = [
            dict(zip(
                csr.indices[a:b].tolist(), csr.data[a:b].tolist()
            ))
            for a, b in zip(csr.indptr[:-1], csr.indptr[1:])
        ]
        self._pred = [
            dict(zip(
                csc.indices[a:b].tolist(), csc.data[a:b].tolist()
            ))
            for a, b in zip(csc.indptr[:-1], csc.indptr[1:])
        ]

    # ------------------------------------------------------------------
    # mutation hooks
    # ------------------------------------------------------------------
    def add_listener(self, listener: Any) -> None:
        """Subscribe an observer to structural mutations.

        A listener is duck-typed: if it defines ``on_node_added(index)``
        it is told about every new node, and if it defines
        ``on_arc_changed(ui, vi, old_weight, new_weight)`` it is told
        about every stored-arc weight change (an undirected edge fires
        once per stored direction, so a symmetric view needs no special
        casing).  This is how :class:`repro.dynamic.DynamicColoring`
        maintains its degree matrices incrementally.  Listeners are not
        carried over by :meth:`copy`.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: Any) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify_node(self, index: int) -> None:
        for listener in self._listeners:
            hook = getattr(listener, "on_node_added", None)
            if hook is not None:
                hook(index)

    def _notify_arc(self, ui: int, vi: int, old: float, new: float) -> None:
        if old == new:
            return
        for listener in self._listeners:
            hook = getattr(listener, "on_arc_changed", None)
            if hook is not None:
                hook(ui, vi, old, new)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, label: Hashable | None = None) -> int:
        """Add a node (default label = its index); return its index."""
        self._ensure_labels()
        self._ensure_adjacency()
        if label is None:
            label = self._n
        if label in self._index:
            return self._index[label]
        index = self._n
        self._labels.append(label)
        self._index[label] = index
        self._succ.append({})
        self._pred.append({})
        self._n += 1
        self._invalidate()
        if self._listeners:
            self._notify_node(index)
        return index

    def add_nodes(self, labels: Iterable[Hashable]) -> list[int]:
        """Add several nodes; return their indices."""
        return [self.add_node(label) for label in labels]

    def add_edge(self, u: Hashable, v: Hashable, weight: float = 1.0) -> None:
        """Add (or overwrite) the edge ``u -> v`` with the given weight.

        For undirected graphs the reverse direction is stored as well.
        A weight of exactly zero means "no edge" (Sec. 3 convention), so
        adding a zero-weight edge removes any existing edge instead.
        """
        if weight == 0.0:
            self.remove_edge(u, v, missing_ok=True)
            return
        ui = self.add_node(u)
        vi = self.add_node(v)
        old = self._succ[ui].get(vi, 0.0)
        self._succ[ui][vi] = float(weight)
        self._pred[vi][ui] = float(weight)
        if not self.directed and ui != vi:
            self._succ[vi][ui] = float(weight)
            self._pred[ui][vi] = float(weight)
        self._invalidate()
        if self._listeners:
            self._notify_arc(ui, vi, old, float(weight))
            if not self.directed and ui != vi:
                self._notify_arc(vi, ui, old, float(weight))

    def add_weighted_edges(self, edges: Iterable[EdgeTriple]) -> None:
        for u, v, w in edges:
            self.add_edge(u, v, w)

    def add_edges(self, edges: Iterable[Tuple[Hashable, Hashable]]) -> None:
        for u, v in edges:
            self.add_edge(u, v, 1.0)

    def remove_edge(self, u: Hashable, v: Hashable, missing_ok: bool = False) -> None:
        """Remove the edge ``u -> v`` (both directions if undirected)."""
        self._ensure_labels()
        self._ensure_adjacency()
        try:
            ui, vi = self._index[u], self._index[v]
        except KeyError as exc:
            if missing_ok:
                return
            raise GraphError(f"unknown node in remove_edge({u!r}, {v!r})") from exc
        if vi not in self._succ[ui]:
            if missing_ok:
                return
            raise GraphError(f"no edge {u!r} -> {v!r}")
        old = self._succ[ui][vi]
        del self._succ[ui][vi]
        del self._pred[vi][ui]
        if not self.directed and ui != vi:
            del self._succ[vi][ui]
            del self._pred[ui][vi]
        self._invalidate()
        if self._listeners:
            self._notify_arc(ui, vi, old, 0.0)
            if not self.directed and ui != vi:
                self._notify_arc(vi, ui, old, 0.0)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of stored directed arcs (undirected edges count once)."""
        if self._succ is None:
            csr = self.to_csr()
            if self.directed:
                return int(csr.nnz)
            loops = int(np.count_nonzero(csr.diagonal()))
            return (int(csr.nnz) - loops) // 2 + loops
        arcs = sum(len(adj) for adj in self._succ)
        if self.directed:
            return arcs
        loops = sum(1 for i, adj in enumerate(self._succ) if i in adj)
        return (arcs - loops) // 2 + loops

    @property
    def n_arcs(self) -> int:
        """Number of stored directed arcs, regardless of directedness."""
        if self._succ is None:
            return int(self.to_csr().nnz)
        return sum(len(adj) for adj in self._succ)

    def labels(self) -> list[Hashable]:
        """Return node labels ordered by internal index."""
        if self._labels is None:
            return list(range(self._n))
        return list(self._labels)

    def index_of(self, label: Hashable) -> int:
        if self._index is None:
            if isinstance(label, (int, np.integer)) and 0 <= label < self._n:
                return int(label)
            raise GraphError(f"unknown node {label!r}")
        try:
            return self._index[label]
        except KeyError as exc:
            raise GraphError(f"unknown node {label!r}") from exc

    def label_of(self, index: int) -> Hashable:
        if self._labels is None:
            if not 0 <= index < self._n:
                raise IndexError(f"node index {index} out of range")
            return index
        return self._labels[index]

    def has_node(self, label: Hashable) -> bool:
        if self._index is None:
            return isinstance(label, (int, np.integer)) and 0 <= label < self._n
        return label in self._index

    def _csr_weight(self, ui: int, vi: int) -> float:
        """Single-arc lookup off the cached CSR (lazy graphs only):
        binary search within the sorted row slice, no dict build."""
        csr = self.to_csr()
        lo, hi = int(csr.indptr[ui]), int(csr.indptr[ui + 1])
        position = lo + int(np.searchsorted(csr.indices[lo:hi], vi))
        if position < hi and csr.indices[position] == vi:
            return float(csr.data[position])
        return 0.0

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        if not self.has_node(u) or not self.has_node(v):
            return False
        if self._succ is None:
            return self._csr_weight(self.index_of(u), self.index_of(v)) != 0.0
        return self.index_of(v) in self._succ[self.index_of(u)]

    def weight(self, u: Hashable, v: Hashable) -> float:
        """Return the weight of ``u -> v`` (0.0 if absent, Sec. 3 convention)."""
        if not self.has_node(u) or not self.has_node(v):
            return 0.0
        if self._succ is None:
            return self._csr_weight(self.index_of(u), self.index_of(v))
        return self._succ[self.index_of(u)].get(self.index_of(v), 0.0)

    def successors(self, u: Hashable) -> Iterator[Hashable]:
        self._ensure_adjacency()
        for vi in self._succ[self.index_of(u)]:
            yield self.label_of(vi)

    def predecessors(self, u: Hashable) -> Iterator[Hashable]:
        self._ensure_adjacency()
        for vi in self._pred[self.index_of(u)]:
            yield self.label_of(vi)

    def out_items(self, index: int) -> Mapping[int, float]:
        """Successor index -> weight map for an internal node index."""
        self._ensure_adjacency()
        return self._succ[index]

    def in_items(self, index: int) -> Mapping[int, float]:
        """Predecessor index -> weight map for an internal node index."""
        self._ensure_adjacency()
        return self._pred[index]

    def out_degree(self, u: Hashable, weighted: bool = False) -> float:
        self._ensure_adjacency()
        adj = self._succ[self.index_of(u)]
        return sum(adj.values()) if weighted else float(len(adj))

    def in_degree(self, u: Hashable, weighted: bool = False) -> float:
        self._ensure_adjacency()
        adj = self._pred[self.index_of(u)]
        return sum(adj.values()) if weighted else float(len(adj))

    def edges(self) -> Iterator[EdgeTriple]:
        """Yield ``(u_label, v_label, weight)``.

        Undirected graphs yield each edge once, with ``u_index <= v_index``.
        """
        self._ensure_adjacency()
        for ui, adj in enumerate(self._succ):
            for vi, w in adj.items():
                if not self.directed and vi < ui:
                    continue
                yield self.label_of(ui), self.label_of(vi), w

    def total_weight(self) -> float:
        """Sum of arc weights (undirected edges counted once)."""
        return sum(w for _, _, w in self.edges())

    def __len__(self) -> int:
        return self.n_nodes

    def __contains__(self, label: Hashable) -> bool:
        return self.has_node(label)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"<WeightedDiGraph {kind} n_nodes={self.n_nodes} "
            f"n_edges={self.n_edges}>"
        )

    # ------------------------------------------------------------------
    # matrix views
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._csr = None
        self._csc = None

    def to_csr(self) -> sp.csr_matrix:
        """Adjacency as a cached ``n x n`` CSR matrix of weights."""
        if self._csr is None:
            self._ensure_adjacency()
            n = self.n_nodes
            rows, cols, data = [], [], []
            for ui, adj in enumerate(self._succ):
                for vi, w in adj.items():
                    rows.append(ui)
                    cols.append(vi)
                    data.append(w)
            self._csr = sp.csr_matrix(
                (np.asarray(data, dtype=np.float64), (rows, cols)), shape=(n, n)
            )
        return self._csr

    def to_csc(self) -> sp.csc_matrix:
        if self._csc is None:
            self._csc = self.to_csr().tocsc()
        return self._csc

    def to_dense(self) -> np.ndarray:
        return self.to_csr().toarray()

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        weight: np.ndarray | None = None,
        *,
        n_nodes: int | None = None,
        directed: bool = True,
        labels: Sequence[Hashable] | None = None,
    ) -> "WeightedDiGraph":
        """Vectorized bulk construction from parallel edge arrays.

        Builds the CSR snapshot directly — no per-edge dict insertion.
        The dict-of-dicts adjacency (and, when ``labels`` is omitted,
        the label table) stays unmaterialized until a mutation or
        per-node query needs it, so array-built graphs feed the
        vectorized coloring/solver pipeline in ``O(m)`` time and memory.

        ``src``/``dst`` hold integer node indices; ``weight`` defaults
        to all ones.  Duplicate ``(src, dst)`` pairs sum their weights
        (COO semantics); exact-zero weights are dropped (Sec. 3: zero
        means "no edge").  For ``directed=False`` pass each undirected
        edge once, in either orientation.  ``labels``, when given, must
        have one entry per node and assigns ``labels[i]`` to index ``i``.
        """
        src = coerce_index_array(src, "src")
        dst = coerce_index_array(dst, "dst")
        if src.shape != dst.shape:
            raise GraphError(
                f"src and dst must match, got {src.size} vs {dst.size}"
            )
        if weight is None:
            weight = np.ones(src.size, dtype=np.float64)
        else:
            weight = np.asarray(weight, dtype=np.float64).ravel()
            if weight.shape != src.shape:
                raise GraphError(
                    f"weight must match src/dst, got {weight.size} edges "
                    f"vs {src.size}"
                )
        if n_nodes is None:
            n = int(max(src.max(), dst.max())) + 1 if src.size else 0
        else:
            n = int(n_nodes)
        if src.size and (
            src.min() < 0 or dst.min() < 0
            or src.max() >= n or dst.max() >= n
        ):
            bad = np.flatnonzero(
                (src < 0) | (dst < 0) | (src >= n) | (dst >= n)
            )
            arc = int(bad[0])
            raise GraphError(
                f"edge endpoints out of range [0, {n}): arc {arc}: "
                f"{src[arc]} -> {dst[arc]}"
            )
        if labels is not None and len(labels) != n:
            raise GraphError(
                f"labels must have one entry per node, got {len(labels)} "
                f"for {n} nodes"
            )
        nonzero = weight != 0.0
        if not nonzero.all():
            src, dst, weight = src[nonzero], dst[nonzero], weight[nonzero]
        if not directed and src.size:
            off_diagonal = src != dst
            src, dst, weight = (
                np.concatenate([src, dst[off_diagonal]]),
                np.concatenate([dst, src[off_diagonal]]),
                np.concatenate([weight, weight[off_diagonal]]),
            )
        graph = cls(directed=directed)
        graph._n = n
        if labels is not None:
            graph._labels = list(labels)
            graph._index = {
                label: i for i, label in enumerate(graph._labels)
            }
            if len(graph._index) != n:
                raise GraphError("duplicate node labels")
        else:
            graph._labels = None
            graph._index = None
        graph._succ = None
        graph._pred = None
        csr = sp.csr_matrix(
            (weight, (src, dst)), shape=(n, n), dtype=np.float64
        )
        # Duplicates were summed by the COO conversion; sums that cancel
        # to exactly zero must disappear entirely (Sec. 3: zero means
        # "no edge", matching add_edge's removal semantics).  Sorted
        # indices let single-edge probes binary-search the row slices.
        csr.eliminate_zeros()
        csr.sort_indices()
        graph._csr = csr
        return graph

    @classmethod
    def from_edgestore(
        cls, store: Any, *, mmap: bool = True
    ) -> "WeightedDiGraph":
        """Array-built graph over an on-disk edge store snapshot.

        ``store`` is an :class:`repro.graphs.edgestore.EdgeStore` or a
        path to one.  With ``mmap=True`` (the default) the cached
        CSR/CSC snapshots wrap the store's ``.npy`` files directly —
        read-only, file-backed, demand-paged — so the coloring kernels
        stream edge segments without the arrays ever being resident.
        ``mmap=False`` loads the same arrays into RAM (the resident
        reference path; colorings are bit-identical either way).

        The dict-of-dicts adjacency stays unmaterialized exactly as in
        :meth:`from_arrays`; a mutation or per-node query materializes
        it (in RAM) from the snapshots, after which the graph behaves
        like any other and the store file is no longer consulted.
        """
        from repro.graphs.edgestore import EdgeStore

        if not isinstance(store, EdgeStore):
            store = EdgeStore(store)
        graph = cls(directed=store.directed)
        graph._n = store.n_nodes
        graph._labels = None
        graph._index = None
        graph._succ = None
        graph._pred = None
        graph._csr = store.csr_matrix(mmap=mmap)
        graph._csc = store.csc_matrix(mmap=mmap)
        return graph

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Hashable, Hashable]],
        directed: bool = True,
        n_nodes: int | None = None,
    ) -> "WeightedDiGraph":
        """Build a unit-weight graph from ``(u, v)`` pairs.

        If ``n_nodes`` is given, nodes ``0..n_nodes-1`` are pre-created so
        isolated vertices survive the conversion.
        """
        graph = cls(directed=directed)
        if n_nodes is not None:
            for i in range(n_nodes):
                graph.add_node(i)
        graph.add_edges(edges)
        return graph

    @classmethod
    def from_weighted_edges(
        cls,
        edges: Iterable[EdgeTriple],
        directed: bool = True,
        n_nodes: int | None = None,
    ) -> "WeightedDiGraph":
        graph = cls(directed=directed)
        if n_nodes is not None:
            for i in range(n_nodes):
                graph.add_node(i)
        graph.add_weighted_edges(edges)
        return graph

    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix, directed: bool = True) -> "WeightedDiGraph":
        """Build from a square sparse adjacency matrix."""
        coo = sp.coo_matrix(matrix)
        if coo.shape[0] != coo.shape[1]:
            raise GraphError(f"adjacency matrix must be square, got {coo.shape}")
        graph = cls(directed=directed)
        for i in range(coo.shape[0]):
            graph.add_node(i)
        for u, v, w in zip(coo.row, coo.col, coo.data):
            if w != 0.0:
                if not directed and v < u:
                    continue
                graph.add_edge(int(u), int(v), float(w))
        return graph

    @classmethod
    def from_networkx(cls, nx_graph: Any, weight: str = "weight") -> "WeightedDiGraph":
        """Convert a networkx (Di)Graph; missing weights default to 1.0."""
        directed = bool(nx_graph.is_directed())
        graph = cls(directed=directed)
        for node in nx_graph.nodes():
            graph.add_node(node)
        for u, v, data in nx_graph.edges(data=True):
            graph.add_edge(u, v, float(data.get(weight, 1.0)))
        return graph

    def to_networkx(self) -> Any:
        import networkx as nx

        nx_graph = nx.DiGraph() if self.directed else nx.Graph()
        nx_graph.add_nodes_from(self.labels())
        for u, v, w in self.edges():
            nx_graph.add_edge(u, v, weight=w)
        return nx_graph

    def _lazy_clone(self, csr: sp.csr_matrix) -> "WeightedDiGraph":
        """Array-built shell around an owned CSR snapshot: label state is
        carried over (copied if materialized), adjacency stays lazy."""
        clone = WeightedDiGraph(directed=self.directed)
        clone._n = self._n
        if self._labels is None:
            clone._labels = None
            clone._index = None
        else:
            clone._labels = list(self._labels)
            clone._index = dict(self._index)
        clone._succ = None
        clone._pred = None
        clone._csr = csr
        return clone

    def copy(self) -> "WeightedDiGraph":
        if self._succ is None:
            # Array-built and still lazy: clone the snapshot, keep the
            # laziness (the copy can diverge through its own mutations).
            return self._lazy_clone(self.to_csr().copy())
        self._ensure_labels()
        clone = WeightedDiGraph(directed=self.directed)
        for label in self._labels:
            clone.add_node(label)
        clone._succ = [dict(adj) for adj in self._succ]
        clone._pred = [dict(adj) for adj in self._pred]
        return clone

    def reverse(self) -> "WeightedDiGraph":
        """Return the graph with every arc reversed (no-op when undirected)."""
        if not self.directed:
            return self.copy()
        if self._succ is None:
            # CSC -> CSR layout conversion always allocates fresh
            # arrays, so the reversed snapshot owns its buffers (a bare
            # ``.T`` would alias this graph's cached data).
            return self._lazy_clone(self.to_csr().T.tocsr())
        rev = WeightedDiGraph(directed=True)
        for label in self.labels():
            rev.add_node(label)
        for u, v, w in self.edges():
            rev.add_edge(v, u, w)
        return rev

    def as_undirected(self) -> "WeightedDiGraph":
        """Symmetrized copy; antiparallel weights are summed."""
        if not self.directed:
            return self.copy()
        self._ensure_adjacency()
        und = WeightedDiGraph(directed=False)
        for label in self.labels():
            und.add_node(label)
        seen: dict[tuple[int, int], float] = {}
        for ui, adj in enumerate(self._succ):
            for vi, w in adj.items():
                key = (min(ui, vi), max(ui, vi))
                seen[key] = seen.get(key, 0.0) + w
        for (ui, vi), w in seen.items():
            und.add_edge(self.label_of(ui), self.label_of(vi), w)
        return und
