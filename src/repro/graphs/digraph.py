"""A weighted directed graph tailored to the coloring algorithms.

Design notes
------------
The coloring engine (``repro.core``) works on contiguous integer node ids
``0..n-1`` and a scipy CSR adjacency matrix.  :class:`WeightedDiGraph`
therefore keeps a dict-of-dicts adjacency for cheap construction and
mutation, plus lazily-built, cached CSR/CSC snapshots for the vectorized
kernels.  Mutations invalidate the cache.

Node labels may be arbitrary hashable objects; the label <-> index mapping
is maintained internally.  Undirected graphs are represented by storing both
edge directions and setting ``directed=False`` for bookkeeping (this makes
every algorithm in the package uniform over both cases, matching the paper's
treatment in Sec. 3).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError

EdgeTriple = Tuple[Hashable, Hashable, float]


class WeightedDiGraph:
    """Weighted directed graph with contiguous internal indices.

    Parameters
    ----------
    directed:
        When ``False``, :meth:`add_edge` stores both directions so the
        adjacency matrix is symmetric.  Self-loops are stored once.
    """

    def __init__(self, directed: bool = True) -> None:
        self.directed = directed
        self._labels: list[Hashable] = []
        self._index: dict[Hashable, int] = {}
        self._succ: list[dict[int, float]] = []
        self._pred: list[dict[int, float]] = []
        self._csr: sp.csr_matrix | None = None
        self._csc: sp.csc_matrix | None = None
        self._listeners: list[Any] = []

    # ------------------------------------------------------------------
    # mutation hooks
    # ------------------------------------------------------------------
    def add_listener(self, listener: Any) -> None:
        """Subscribe an observer to structural mutations.

        A listener is duck-typed: if it defines ``on_node_added(index)``
        it is told about every new node, and if it defines
        ``on_arc_changed(ui, vi, old_weight, new_weight)`` it is told
        about every stored-arc weight change (an undirected edge fires
        once per stored direction, so a symmetric view needs no special
        casing).  This is how :class:`repro.dynamic.DynamicColoring`
        maintains its degree matrices incrementally.  Listeners are not
        carried over by :meth:`copy`.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: Any) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify_node(self, index: int) -> None:
        for listener in self._listeners:
            hook = getattr(listener, "on_node_added", None)
            if hook is not None:
                hook(index)

    def _notify_arc(self, ui: int, vi: int, old: float, new: float) -> None:
        if old == new:
            return
        for listener in self._listeners:
            hook = getattr(listener, "on_arc_changed", None)
            if hook is not None:
                hook(ui, vi, old, new)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, label: Hashable | None = None) -> int:
        """Add a node (default label = its index); return its index."""
        if label is None:
            label = len(self._labels)
        if label in self._index:
            return self._index[label]
        index = len(self._labels)
        self._labels.append(label)
        self._index[label] = index
        self._succ.append({})
        self._pred.append({})
        self._invalidate()
        if self._listeners:
            self._notify_node(index)
        return index

    def add_nodes(self, labels: Iterable[Hashable]) -> list[int]:
        """Add several nodes; return their indices."""
        return [self.add_node(label) for label in labels]

    def add_edge(self, u: Hashable, v: Hashable, weight: float = 1.0) -> None:
        """Add (or overwrite) the edge ``u -> v`` with the given weight.

        For undirected graphs the reverse direction is stored as well.
        A weight of exactly zero means "no edge" (Sec. 3 convention), so
        adding a zero-weight edge removes any existing edge instead.
        """
        if weight == 0.0:
            self.remove_edge(u, v, missing_ok=True)
            return
        ui = self.add_node(u)
        vi = self.add_node(v)
        old = self._succ[ui].get(vi, 0.0)
        self._succ[ui][vi] = float(weight)
        self._pred[vi][ui] = float(weight)
        if not self.directed and ui != vi:
            self._succ[vi][ui] = float(weight)
            self._pred[ui][vi] = float(weight)
        self._invalidate()
        if self._listeners:
            self._notify_arc(ui, vi, old, float(weight))
            if not self.directed and ui != vi:
                self._notify_arc(vi, ui, old, float(weight))

    def add_weighted_edges(self, edges: Iterable[EdgeTriple]) -> None:
        for u, v, w in edges:
            self.add_edge(u, v, w)

    def add_edges(self, edges: Iterable[Tuple[Hashable, Hashable]]) -> None:
        for u, v in edges:
            self.add_edge(u, v, 1.0)

    def remove_edge(self, u: Hashable, v: Hashable, missing_ok: bool = False) -> None:
        """Remove the edge ``u -> v`` (both directions if undirected)."""
        try:
            ui, vi = self._index[u], self._index[v]
        except KeyError as exc:
            if missing_ok:
                return
            raise GraphError(f"unknown node in remove_edge({u!r}, {v!r})") from exc
        if vi not in self._succ[ui]:
            if missing_ok:
                return
            raise GraphError(f"no edge {u!r} -> {v!r}")
        old = self._succ[ui][vi]
        del self._succ[ui][vi]
        del self._pred[vi][ui]
        if not self.directed and ui != vi:
            del self._succ[vi][ui]
            del self._pred[ui][vi]
        self._invalidate()
        if self._listeners:
            self._notify_arc(ui, vi, old, 0.0)
            if not self.directed and ui != vi:
                self._notify_arc(vi, ui, old, 0.0)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self._labels)

    @property
    def n_edges(self) -> int:
        """Number of stored directed arcs (undirected edges count once)."""
        arcs = sum(len(adj) for adj in self._succ)
        if self.directed:
            return arcs
        loops = sum(1 for i, adj in enumerate(self._succ) if i in adj)
        return (arcs - loops) // 2 + loops

    @property
    def n_arcs(self) -> int:
        """Number of stored directed arcs, regardless of directedness."""
        return sum(len(adj) for adj in self._succ)

    def labels(self) -> list[Hashable]:
        """Return node labels ordered by internal index."""
        return list(self._labels)

    def index_of(self, label: Hashable) -> int:
        try:
            return self._index[label]
        except KeyError as exc:
            raise GraphError(f"unknown node {label!r}") from exc

    def label_of(self, index: int) -> Hashable:
        return self._labels[index]

    def has_node(self, label: Hashable) -> bool:
        return label in self._index

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        if u not in self._index or v not in self._index:
            return False
        return self._index[v] in self._succ[self._index[u]]

    def weight(self, u: Hashable, v: Hashable) -> float:
        """Return the weight of ``u -> v`` (0.0 if absent, Sec. 3 convention)."""
        if u not in self._index or v not in self._index:
            return 0.0
        return self._succ[self._index[u]].get(self._index[v], 0.0)

    def successors(self, u: Hashable) -> Iterator[Hashable]:
        for vi in self._succ[self.index_of(u)]:
            yield self._labels[vi]

    def predecessors(self, u: Hashable) -> Iterator[Hashable]:
        for vi in self._pred[self.index_of(u)]:
            yield self._labels[vi]

    def out_items(self, index: int) -> Mapping[int, float]:
        """Successor index -> weight map for an internal node index."""
        return self._succ[index]

    def in_items(self, index: int) -> Mapping[int, float]:
        """Predecessor index -> weight map for an internal node index."""
        return self._pred[index]

    def out_degree(self, u: Hashable, weighted: bool = False) -> float:
        adj = self._succ[self.index_of(u)]
        return sum(adj.values()) if weighted else float(len(adj))

    def in_degree(self, u: Hashable, weighted: bool = False) -> float:
        adj = self._pred[self.index_of(u)]
        return sum(adj.values()) if weighted else float(len(adj))

    def edges(self) -> Iterator[EdgeTriple]:
        """Yield ``(u_label, v_label, weight)``.

        Undirected graphs yield each edge once, with ``u_index <= v_index``.
        """
        for ui, adj in enumerate(self._succ):
            for vi, w in adj.items():
                if not self.directed and vi < ui:
                    continue
                yield self._labels[ui], self._labels[vi], w

    def total_weight(self) -> float:
        """Sum of arc weights (undirected edges counted once)."""
        return sum(w for _, _, w in self.edges())

    def __len__(self) -> int:
        return self.n_nodes

    def __contains__(self, label: Hashable) -> bool:
        return label in self._index

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"<WeightedDiGraph {kind} n_nodes={self.n_nodes} "
            f"n_edges={self.n_edges}>"
        )

    # ------------------------------------------------------------------
    # matrix views
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._csr = None
        self._csc = None

    def to_csr(self) -> sp.csr_matrix:
        """Adjacency as a cached ``n x n`` CSR matrix of weights."""
        if self._csr is None:
            n = self.n_nodes
            rows, cols, data = [], [], []
            for ui, adj in enumerate(self._succ):
                for vi, w in adj.items():
                    rows.append(ui)
                    cols.append(vi)
                    data.append(w)
            self._csr = sp.csr_matrix(
                (np.asarray(data, dtype=np.float64), (rows, cols)), shape=(n, n)
            )
        return self._csr

    def to_csc(self) -> sp.csc_matrix:
        if self._csc is None:
            self._csc = self.to_csr().tocsc()
        return self._csc

    def to_dense(self) -> np.ndarray:
        return self.to_csr().toarray()

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Hashable, Hashable]],
        directed: bool = True,
        n_nodes: int | None = None,
    ) -> "WeightedDiGraph":
        """Build a unit-weight graph from ``(u, v)`` pairs.

        If ``n_nodes`` is given, nodes ``0..n_nodes-1`` are pre-created so
        isolated vertices survive the conversion.
        """
        graph = cls(directed=directed)
        if n_nodes is not None:
            for i in range(n_nodes):
                graph.add_node(i)
        graph.add_edges(edges)
        return graph

    @classmethod
    def from_weighted_edges(
        cls,
        edges: Iterable[EdgeTriple],
        directed: bool = True,
        n_nodes: int | None = None,
    ) -> "WeightedDiGraph":
        graph = cls(directed=directed)
        if n_nodes is not None:
            for i in range(n_nodes):
                graph.add_node(i)
        graph.add_weighted_edges(edges)
        return graph

    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix, directed: bool = True) -> "WeightedDiGraph":
        """Build from a square sparse adjacency matrix."""
        coo = sp.coo_matrix(matrix)
        if coo.shape[0] != coo.shape[1]:
            raise GraphError(f"adjacency matrix must be square, got {coo.shape}")
        graph = cls(directed=directed)
        for i in range(coo.shape[0]):
            graph.add_node(i)
        for u, v, w in zip(coo.row, coo.col, coo.data):
            if w != 0.0:
                if not directed and v < u:
                    continue
                graph.add_edge(int(u), int(v), float(w))
        return graph

    @classmethod
    def from_networkx(cls, nx_graph: Any, weight: str = "weight") -> "WeightedDiGraph":
        """Convert a networkx (Di)Graph; missing weights default to 1.0."""
        directed = bool(nx_graph.is_directed())
        graph = cls(directed=directed)
        for node in nx_graph.nodes():
            graph.add_node(node)
        for u, v, data in nx_graph.edges(data=True):
            graph.add_edge(u, v, float(data.get(weight, 1.0)))
        return graph

    def to_networkx(self) -> Any:
        import networkx as nx

        nx_graph = nx.DiGraph() if self.directed else nx.Graph()
        nx_graph.add_nodes_from(self._labels)
        for u, v, w in self.edges():
            nx_graph.add_edge(u, v, weight=w)
        return nx_graph

    def copy(self) -> "WeightedDiGraph":
        clone = WeightedDiGraph(directed=self.directed)
        for label in self._labels:
            clone.add_node(label)
        clone._succ = [dict(adj) for adj in self._succ]
        clone._pred = [dict(adj) for adj in self._pred]
        return clone

    def reverse(self) -> "WeightedDiGraph":
        """Return the graph with every arc reversed (no-op when undirected)."""
        if not self.directed:
            return self.copy()
        rev = WeightedDiGraph(directed=True)
        for label in self._labels:
            rev.add_node(label)
        for u, v, w in self.edges():
            rev.add_edge(v, u, w)
        return rev

    def as_undirected(self) -> "WeightedDiGraph":
        """Symmetrized copy; antiparallel weights are summed."""
        if not self.directed:
            return self.copy()
        und = WeightedDiGraph(directed=False)
        for label in self._labels:
            und.add_node(label)
        seen: dict[tuple[int, int], float] = {}
        for ui, adj in enumerate(self._succ):
            for vi, w in adj.items():
                key = (min(ui, vi), max(ui, vi))
                seen[key] = seen.get(key, 0.0) + w
        for (ui, vi), w in seen.items():
            und.add_edge(self._labels[ui], self._labels[vi], w)
        return und
