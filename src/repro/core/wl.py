"""Weisfeiler–Leman colorings: 1-WL and 2-WL (Sec. 4.3).

Theorem 11 states that two nodes with the same *2-WL* color have the same
betweenness centrality (while 1-WL / stable coloring does not guarantee
this — Fig. 5).  The test suite verifies the theorem on small graphs using
this module.

``wl2_pair_coloring`` implements the folklore 2-dimensional WL: colors live
on ordered pairs ``(u, v)``; the initial color records (u == v, adjacency,
weight); each round refines by the multiset over all ``w`` of the pair
``(color(u, w), color(w, v))``.  ``O(n^3)`` per round — intended for the
small graphs where the theory is exercised.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import Coloring
from repro.core.refinement import stable_coloring
from repro.core.rothko import coerce_adjacency


def wl1_coloring(graph, initial: Coloring | None = None) -> Coloring:
    """1-WL node coloring — an alias for the maximum stable coloring."""
    return stable_coloring(coerce_adjacency(graph), initial=initial)


def wl2_pair_coloring(graph, max_rounds: int | None = None) -> np.ndarray:
    """2-WL coloring of ordered node pairs.

    Returns an ``n x n`` integer array of canonical pair colors.
    """
    matrix = coerce_adjacency(graph).toarray()
    n = matrix.shape[0]
    if max_rounds is None:
        max_rounds = max(n * n, 1)

    # Initial color: (is diagonal, forward weight, backward weight).
    initial_keys: dict[tuple, int] = {}
    colors = np.empty((n, n), dtype=np.int64)
    for u in range(n):
        for v in range(n):
            key = (u == v, float(matrix[u, v]), float(matrix[v, u]))
            if key not in initial_keys:
                initial_keys[key] = len(initial_keys)
            colors[u, v] = initial_keys[key]

    n_colors = len(initial_keys)
    for _ in range(max_rounds):
        signature_ids: dict[tuple, int] = {}
        new_colors = np.empty_like(colors)
        for u in range(n):
            for v in range(n):
                neighborhood = sorted(
                    zip(colors[u, :].tolist(), colors[:, v].tolist())
                )
                signature = (int(colors[u, v]), tuple(neighborhood))
                if signature not in signature_ids:
                    signature_ids[signature] = len(signature_ids)
                new_colors[u, v] = signature_ids[signature]
        if len(signature_ids) == n_colors:
            return colors
        colors = new_colors
        n_colors = len(signature_ids)
    return colors


def wl2_node_coloring(graph, max_rounds: int | None = None) -> Coloring:
    """Node equivalence induced by 2-WL: the diagonal pair colors.

    Two nodes ``u, v`` get the same color iff the pairs ``(u, u)`` and
    ``(v, v)`` share a 2-WL color — the standard node-level projection
    used by Theorem 11.
    """
    pair_colors = wl2_pair_coloring(graph, max_rounds=max_rounds)
    return Coloring(np.diagonal(pair_colors).copy())
