"""Exact color refinement: stable colorings and congruence colorings.

``stable_coloring`` computes the unique *maximum* (coarsest) stable
coloring of a weighted directed graph — the 1-WL fixpoint of Sec. 2,
generalized to weights: two nodes share a color only if their total
edge weight into every color agrees exactly, in both directions.

``congruence_coloring`` generalizes the fixpoint to any similarity
relation that is a congruence w.r.t. addition (Theorem 12(1)): block sums
are bucketed by their canonical form (e.g. ``min(x, c)``), and the same
iterated-refinement argument yields the unique maximum quasi-stable
coloring in polynomial time.

The implementation refines by signature grouping: each round builds, for
every node, the sparse vector of (color -> canonical block weight) pairs in
both directions and splits classes whose members disagree.  Signatures are
grouped in bulk, not per row: the CSR index arrays are sorted once
(``sort_indices``), rows are bucketed by nnz count, and each bucket's
``(previous label, columns, values)`` views — packed rectangles delimited
by ``indptr`` — go through one ``np.unique(axis=0)`` call.  Rounds are
``O(m log m + n)`` with all per-row work vectorized; at most ``n`` rounds
are needed and real graphs converge in a handful.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.kernels import as_csr_square
from repro.core.partition import Coloring
from repro.core.similarity import Equality, Similarity
from repro.exceptions import ColoringError


def _as_csr(adjacency: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    try:
        return as_csr_square(adjacency)
    except ValueError as exc:
        raise ColoringError(str(exc)) from exc


def _group_rows(matrix: sp.csr_matrix) -> np.ndarray:
    """Group ids per row: equal iff the rows' sparse signatures match.

    The vectorized replacement for per-row signature tuples.  Column
    indices are sorted once (scipy does not guarantee sorted indices
    after a sparse matmul, and an order-sensitive comparison would
    spuriously split identical rows) and explicit zeros dropped; rows
    are then bucketed by nnz count, and each bucket's packed
    ``(columns, values)`` rectangle — sliced out of the CSR arrays via
    ``indptr``-based offsets — is deduplicated with a single
    ``np.unique(axis=0)``.
    """
    matrix = matrix.tocsr()
    matrix.sort_indices()
    matrix.eliminate_zeros()
    n = matrix.shape[0]
    lengths = np.diff(matrix.indptr)
    group_ids = np.empty(n, dtype=np.int64)
    next_id = 0
    for length in np.unique(lengths):
        rows = np.flatnonzero(lengths == length)
        if length == 0 or rows.size == 1:
            # All-zero rows share one signature; a singleton bucket is
            # trivially its own group.
            group_ids[rows] = next_id
            next_id += 1
            continue
        offsets = matrix.indptr[rows][:, None] + np.arange(length)[None, :]
        packed = np.concatenate(
            [matrix.indices[offsets].astype(np.float64), matrix.data[offsets]],
            axis=1,
        )
        _, inverse = np.unique(packed, axis=0, return_inverse=True)
        group_ids[rows] = next_id + inverse
        next_id += int(inverse.max()) + 1
    return group_ids


def _pair_ids(*id_arrays: np.ndarray) -> np.ndarray:
    """Combine per-component group ids into joint group ids."""
    combined = id_arrays[0].astype(np.int64)
    if combined.size == 0:
        return combined
    for ids in id_arrays[1:]:
        combined = combined * (int(ids.max()) + 1) + ids
        # Keep the running key dense so products never overflow int64.
        _, combined = np.unique(combined, return_inverse=True)
    return combined


def _apply_canonical(
    matrix: sp.csr_matrix, similarity: Similarity
) -> sp.csr_matrix:
    """Map stored weights through the congruence's canonical form."""
    if isinstance(similarity, Equality):
        return matrix
    result = matrix.copy()
    result.data = np.fromiter(
        (similarity.canonical(value) for value in result.data),
        dtype=np.float64,
        count=result.data.size,
    )
    result.eliminate_zeros()
    return result


def congruence_coloring(
    adjacency: sp.spmatrix | np.ndarray,
    similarity: Similarity,
    initial: Coloring | None = None,
    max_rounds: int | None = None,
) -> Coloring:
    """Maximum ``~``quasi-stable coloring for a congruence ``~``.

    Parameters
    ----------
    adjacency:
        Square (sparse) weighted adjacency matrix.
    similarity:
        A congruence relation (``is_congruence`` must be True).
    initial:
        Optional starting partition; the result refines it.  Defaults to
        the trivial single-color partition, which yields the maximum
        coloring of the whole graph.
    max_rounds:
        Safety cap on refinement rounds (default: ``n``).
    """
    if not similarity.is_congruence:
        raise ColoringError(
            f"{similarity!r} is not a congruence; no unique maximum "
            "coloring exists (Theorem 12) — use the Rothko heuristic instead"
        )
    matrix = _as_csr(adjacency)
    matrix_t = matrix.T.tocsr()
    n = matrix.shape[0]
    coloring = initial if initial is not None else Coloring.trivial(n)
    if coloring.n != n:
        raise ColoringError(
            f"initial coloring has {coloring.n} nodes, adjacency has {n}"
        )
    rounds_left = max_rounds if max_rounds is not None else max(n, 1)

    while rounds_left > 0:
        rounds_left -= 1
        indicator = coloring.indicator()
        d_out = _apply_canonical((matrix @ indicator).tocsr(), similarity)
        d_in = _apply_canonical((matrix_t @ indicator).tocsr(), similarity)
        refined = Coloring(
            _pair_ids(coloring.labels, _group_rows(d_out), _group_rows(d_in))
        )
        if refined.n_colors == coloring.n_colors:
            return coloring
        coloring = refined
    return coloring


def stable_coloring(
    adjacency: sp.spmatrix | np.ndarray,
    initial: Coloring | None = None,
    max_rounds: int | None = None,
) -> Coloring:
    """The unique maximum stable coloring (1-WL fixpoint, Sec. 2).

    Equality is a congruence, so this is :func:`congruence_coloring` with
    the equality relation — the classical color refinement, generalized to
    weighted directed graphs (block *sums* must agree exactly).
    """
    return congruence_coloring(
        adjacency, Equality(), initial=initial, max_rounds=max_rounds
    )
