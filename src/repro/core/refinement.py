"""Exact color refinement: stable colorings and congruence colorings.

``stable_coloring`` computes the unique *maximum* (coarsest) stable
coloring of a weighted directed graph — the 1-WL fixpoint of Sec. 2,
generalized to weights: two nodes share a color only if their total
edge weight into every color agrees exactly, in both directions.

``congruence_coloring`` generalizes the fixpoint to any similarity
relation that is a congruence w.r.t. addition (Theorem 12(1)): block sums
are bucketed by their canonical form (e.g. ``min(x, c)``), and the same
iterated-refinement argument yields the unique maximum quasi-stable
coloring in polynomial time.

The implementation refines by signature hashing: each round builds, for
every node, the sparse vector of (color -> canonical block weight) pairs in
both directions and splits classes whose members disagree.  Rounds are
``O(m + n)`` each (sparse matvec plus row hashing) and at most ``n`` rounds
are needed; real graphs converge in a handful.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.partition import Coloring
from repro.core.similarity import Equality, Similarity
from repro.exceptions import ColoringError


def _as_csr(adjacency: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    matrix = sp.csr_matrix(adjacency, dtype=np.float64)
    if matrix.shape[0] != matrix.shape[1]:
        raise ColoringError(f"adjacency must be square, got {matrix.shape}")
    return matrix


def _row_signature(matrix: sp.csr_matrix, row: int) -> tuple:
    """Hashable (color, weight) signature of one CSR row, zeros dropped.

    Entries are sorted by column id: scipy does not guarantee sorted
    indices after a sparse matmul, and an order-sensitive signature would
    spuriously split identical rows.
    """
    start, end = matrix.indptr[row], matrix.indptr[row + 1]
    cols = matrix.indices[start:end]
    data = matrix.data[start:end]
    keep = data != 0.0
    pairs = sorted(zip(cols[keep].tolist(), data[keep].tolist()))
    return tuple(pairs)


def _apply_canonical(
    matrix: sp.csr_matrix, similarity: Similarity
) -> sp.csr_matrix:
    """Map stored weights through the congruence's canonical form."""
    if isinstance(similarity, Equality):
        return matrix
    result = matrix.copy()
    result.data = np.fromiter(
        (similarity.canonical(value) for value in result.data),
        dtype=np.float64,
        count=result.data.size,
    )
    result.eliminate_zeros()
    return result


def congruence_coloring(
    adjacency: sp.spmatrix | np.ndarray,
    similarity: Similarity,
    initial: Coloring | None = None,
    max_rounds: int | None = None,
) -> Coloring:
    """Maximum ``~``quasi-stable coloring for a congruence ``~``.

    Parameters
    ----------
    adjacency:
        Square (sparse) weighted adjacency matrix.
    similarity:
        A congruence relation (``is_congruence`` must be True).
    initial:
        Optional starting partition; the result refines it.  Defaults to
        the trivial single-color partition, which yields the maximum
        coloring of the whole graph.
    max_rounds:
        Safety cap on refinement rounds (default: ``n``).
    """
    if not similarity.is_congruence:
        raise ColoringError(
            f"{similarity!r} is not a congruence; no unique maximum "
            "coloring exists (Theorem 12) — use the Rothko heuristic instead"
        )
    matrix = _as_csr(adjacency)
    matrix_t = matrix.T.tocsr()
    n = matrix.shape[0]
    coloring = initial if initial is not None else Coloring.trivial(n)
    if coloring.n != n:
        raise ColoringError(
            f"initial coloring has {coloring.n} nodes, adjacency has {n}"
        )
    rounds_left = max_rounds if max_rounds is not None else max(n, 1)

    while rounds_left > 0:
        rounds_left -= 1
        indicator = coloring.indicator()
        d_out = _apply_canonical((matrix @ indicator).tocsr(), similarity)
        d_in = _apply_canonical((matrix_t @ indicator).tocsr(), similarity)
        signature_ids: dict[tuple, int] = {}
        new_labels = np.empty(n, dtype=np.int64)
        for node in range(n):
            signature = (
                int(coloring.labels[node]),
                _row_signature(d_out, node),
                _row_signature(d_in, node),
            )
            if signature not in signature_ids:
                signature_ids[signature] = len(signature_ids)
            new_labels[node] = signature_ids[signature]
        refined = Coloring(new_labels)
        if refined.n_colors == coloring.n_colors:
            return coloring
        coloring = refined
    return coloring


def stable_coloring(
    adjacency: sp.spmatrix | np.ndarray,
    initial: Coloring | None = None,
    max_rounds: int | None = None,
) -> Coloring:
    """The unique maximum stable coloring (1-WL fixpoint, Sec. 2).

    Equality is a congruence, so this is :func:`congruence_coloring` with
    the equality relation — the classical color refinement, generalized to
    weighted directed graphs (block *sums* must agree exactly).
    """
    return congruence_coloring(
        adjacency, Equality(), initial=initial, max_rounds=max_rounds
    )
