"""Similarity relations ``~`` on the reals (Sec. 3, Definition 1).

A quasi-stable coloring is parameterized by a reflexive, symmetric relation
``~``: a bipartite block is ``~regular`` when all its row sums are pairwise
similar and all its column sums are pairwise similar.  The paper's examples:

* :class:`Equality` — ``u ~ v iff u = v``; recovers the classic stable
  coloring (Sec. 3.1, "Biregular Graphs, and Stable Coloring");
* :class:`QAbsolute` — ``u ~ v iff |u - v| <= q``; the q-stable coloring
  used throughout the paper;
* :class:`EpsRelative` — ``u e^-eps <= v <= u e^eps``; relative error bound
  (isolated nodes form their own color because 0 ~ v implies v = 0);
* :class:`Bisimulation` — both zero or both nonzero; an equivalence
  relation whose quasi-stable colorings are bisimulations;
* :class:`CappedCongruence` — ``min(u, c) = min(v, c)``; the addition
  congruence from Theorem 12(1) which interpolates between bisimulation
  (c = 1 on integer weights) and stable coloring (c = inf).

Relations that are *congruences with respect to addition* admit a unique
maximum quasi-stable coloring computable in PTIME (Theorem 12(1)); those
expose a :meth:`Similarity.canonical` value so refinement can bucket block
sums by equivalence class.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np


class Similarity(ABC):
    """A reflexive, symmetric relation on the reals."""

    #: True when the relation is an equivalence relation that is also a
    #: congruence w.r.t. addition (x ~ y implies x + z ~ y + z).  Such
    #: relations admit a unique maximum quasi-stable coloring (Thm. 12(1)).
    is_congruence: bool = False

    @abstractmethod
    def similar(self, u: float, v: float) -> bool:
        """Whether ``u ~ v`` holds."""

    @abstractmethod
    def all_similar(self, values: np.ndarray) -> bool:
        """Whether every pair drawn from ``values`` is similar.

        For non-transitive relations this is stronger than chained
        similarity; the extreme pair is binding.
        """

    def canonical(self, value: float) -> float:
        """Equivalence-class representative (congruences only)."""
        raise NotImplementedError(
            f"{type(self).__name__} is not a congruence; no canonical form"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Equality(Similarity):
    """``u ~ v iff u = v`` — yields the classic stable coloring."""

    is_congruence = True

    def similar(self, u: float, v: float) -> bool:
        return u == v

    def all_similar(self, values: np.ndarray) -> bool:
        array = np.asarray(values, dtype=float)
        return array.size <= 1 or bool(np.ptp(array) == 0.0)

    def canonical(self, value: float) -> float:
        return value


class QAbsolute(Similarity):
    """``u ~ v iff |u - v| <= q`` — the paper's q-stable relation.

    Reflexive and symmetric but *not* transitive, which is precisely why no
    maximum q-stable coloring exists in general (Theorem 12(2)).
    """

    def __init__(self, q: float) -> None:
        if q < 0:
            raise ValueError(f"q must be non-negative, got {q}")
        self.q = float(q)

    def similar(self, u: float, v: float) -> bool:
        return abs(u - v) <= self.q

    def all_similar(self, values: np.ndarray) -> bool:
        array = np.asarray(values, dtype=float)
        return array.size <= 1 or bool(np.ptp(array) <= self.q)

    def __repr__(self) -> str:
        return f"QAbsolute(q={self.q})"


class EpsRelative(Similarity):
    """``u ~ v iff u e^-eps <= v <= u e^eps`` (and symmetrically).

    Zero is similar only to itself, so nodes with no incident weight are
    forced into their own color (Sec. 3.1 discussion).
    """

    def __init__(self, eps: float) -> None:
        if eps < 0:
            raise ValueError(f"eps must be non-negative, got {eps}")
        self.eps = float(eps)

    def similar(self, u: float, v: float) -> bool:
        if u == 0.0 or v == 0.0:
            return u == v
        if (u > 0) != (v > 0):
            return False
        # |ln u - ln v| <= eps is the paper's u e^-eps <= v <= u e^eps in a
        # form that is exactly symmetric in floating point.
        return abs(math.log(abs(u)) - math.log(abs(v))) <= self.eps

    def all_similar(self, values: np.ndarray) -> bool:
        array = np.asarray(values, dtype=float)
        if array.size <= 1:
            return True
        has_zero = bool(np.any(array == 0.0))
        if has_zero:
            return bool(np.all(array == 0.0))
        if np.any(array > 0) and np.any(array < 0):
            return False
        # Same-sign nonzero values: the extreme pair is binding, and using
        # `similar` keeps the scalar and vector code paths bit-identical.
        magnitudes = np.abs(array)
        sign = 1.0 if array.flat[0] > 0 else -1.0
        return self.similar(
            sign * float(magnitudes.min()), sign * float(magnitudes.max())
        )

    def __repr__(self) -> str:
        return f"EpsRelative(eps={self.eps})"


class Bisimulation(Similarity):
    """``u ~ v iff (u = v = 0) or (u != 0 and v != 0)``.

    An equivalence relation (and congruence on non-negative reals); its
    quasi-stable colorings are exactly the bisimulations of the graph
    (Sec. 3.1, "Bisimulation Relation").
    """

    is_congruence = True

    def similar(self, u: float, v: float) -> bool:
        return (u == 0.0) == (v == 0.0)

    def all_similar(self, values: np.ndarray) -> bool:
        array = np.asarray(values, dtype=float)
        if array.size <= 1:
            return True
        nonzero = array != 0.0
        return bool(nonzero.all() or (~nonzero).all())

    def canonical(self, value: float) -> float:
        return 1.0 if value != 0.0 else 0.0


class CappedCongruence(Similarity):
    """``u ~ v iff min(u, c) = min(v, c)`` — Theorem 12(1)'s illustration.

    A congruence w.r.t. addition on non-negative weights: ``c = 1`` gives
    maximal bisimulation on 0/1 weights, ``c = inf`` gives stable coloring.
    """

    is_congruence = True

    def __init__(self, cap: float) -> None:
        if cap < 0:
            raise ValueError(f"cap must be non-negative, got {cap}")
        self.cap = float(cap)

    def similar(self, u: float, v: float) -> bool:
        return min(u, self.cap) == min(v, self.cap)

    def all_similar(self, values: np.ndarray) -> bool:
        array = np.minimum(np.asarray(values, dtype=float), self.cap)
        return array.size <= 1 or bool(np.ptp(array) == 0.0)

    def canonical(self, value: float) -> float:
        return min(value, self.cap)

    def __repr__(self) -> str:
        return f"CappedCongruence(cap={self.cap})"
