"""The Rothko algorithm (Sec. 5.2, Algorithm 1).

Rothko computes a quasi-stable coloring heuristically: starting from the
coarsest partition it repeatedly

1. builds the degree spread ("error") matrices ``U - L`` in both
   directions,
2. picks the *witness* — the color pair (and direction) with the largest
   size-weighted error ``Err ⊙ C``, where ``C[i, j] = |P_i|^alpha
   |P_j|^beta``,
3. splits the witnessing color at the arithmetic (or shifted geometric)
   mean of its members' degrees toward the other color,

until the requested number of colors is reached or the maximum q-error
drops below the tolerance.  The algorithm is *anytime*: `steps()` exposes
the loop as a generator so callers can consume intermediate colorings
(Table 6 measures exactly this responsiveness).

Implementation notes
--------------------
The engine is **memory-flat**: its persistent state is ``O(m + k^2)``,
never ``O(n k)``.  It keeps only

* the CSR/CSC adjacency snapshots (``O(m)``),
* the per-color member lists and the label array (``O(n)`` total),
* the ``k x k`` boundary matrices ``U`` / ``L`` — persistent across
  iterations, patched per split.  The error matrices ``Err`` and the
  size-weighted witness scores ``Err ⊙ C`` are derived from U/L on
  demand during each witness scan (frozen-color masking applied
  there), not maintained — every scan is ``O(k^2)`` regardless, so
  maintaining them would only pin more ``k x k`` state.

The dense ``k x n`` degree matrices of the naive formulation are *never*
materialized.  Instead, each split computes on demand exactly the two
degree **slices** it needs, straight off the CSR/CSC index arrays:

* the split-threshold degree vector ``D[j, members(i)]``
  (an edge-chunked masked bincount, ``O(nnz(members))``);
* after the split of ``c`` into ``(c, t)``, the dirty *columns*
  ``{c, t}`` of ``U``/``L`` from the two fresh degree columns
  (:func:`repro.core.kernels.scatter_select_sums` + one member-order
  gather and ``reduceat`` — no argsort) and the dirty *row-groups*
  ``{c, t}`` from ``k x |members|`` degree slices
  (:func:`repro.core.kernels.color_degree_slice`, reduced in bounded
  member chunks so transient memory stays ``O(k)`` per chunk row).

Witness selection stays a pair of ``O(k^2)`` argmax scans.  Per-split
work is
``O(n + nnz(touched rows/cols) + |c| k + k^2)`` — the same asymptotics
as the previous dense-state engine — while peak memory drops from the
two pinned ``k x n`` float64 matrices (16 GB at ``n`` = 1M, ``k`` =
1024) to the adjacency snapshots plus ``O(n)`` transients, which is
what lets ``bench_rothko_largescale`` color million-node graphs.
Degree slices are direct sums of the (in relative mode, non-negative)
weights, so entries are exactly zero iff every term is — the
geometric/relative thresholds need no residue special-casing.

``strategy="batched"`` (default ``"greedy"``) turns the loop into
rounds: the top-``B`` *non-conflicting* witnesses (pairwise-disjoint
color pairs) are selected with one ``O(k^2)`` scan, all ``B`` splits
are decided against the same pre-round state, and the ``2B`` dirtied
columns/row-groups are refreshed in fused kernel passes sharing one
member-order gather.  This amortizes the per-split ``O(n + k^2)``
overhead for large color budgets; the fidelity contract (tested) is
that batched reaches a max q-error within a constant factor of greedy
at equal ``k``, not the identical split sequence.  The default stays
the paper-exact greedy rule.  :meth:`Rothko.verify_state` checks the
maintained state against a from-scratch recompute; the invariant test
suite drives it after every split in both strategies.

The hot kernels dispatch through a resolved
:class:`~repro.core.backends.base.Backend` (``backend=`` argument, the
``REPRO_BACKEND`` environment variable, or auto-detection — numba when
importable, torch when it sees an accelerator, else the numpy
reference; see :mod:`repro.core.backends`).  The engine holds the
resolved instance and calls its methods directly, so per-kernel
dispatch is one attribute lookup.  All backends are bit-identical on
CPU (the parity sweep enforces it), so the choice affects wall-clock
only.  ``workers=`` (or ``REPRO_WORKERS``) opts batched rounds into
parallel execution: the round's color-disjoint witness masks — and the
post-round refresh of the dirtied columns/row-groups — fan across a
:class:`~repro.core.backends.executor.RoundExecutor`, threads where
the backend's kernels release the GIL (numba, torch) and a
shared-memory process pool for the numpy backend.  Results are
collected in submission order, so a parallel round commits exactly the
serial round's splits — bit-for-bit identical colorings (tested).

``RothkoStep.coloring`` is materialized lazily: the engine records each
split's parent color, so any intermediate snapshot can be reconstructed
on demand by remapping descendants back onto their ancestors — callers
that never inspect snapshots (``run()``, Table 6 timing) pay nothing.

Weights may be negative (the LP reduction colors constraint matrices);
the geometric-mean split requires non-negative degrees and raises
otherwise.

The loop is instrumented for :mod:`repro.obs`: every split (greedy) or
round (batched) opens a span carrying the chosen witness and the
pre-split q-error, and the ``rothko.splits`` counter plus the
``rothko.max_q_err`` gauge track progress.  With no recorder installed
(the default) these calls hit the null recorder and cost nothing
measurable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np
import scipy.sparse as sp

from repro.obs import recorder as _obs
from repro.obs import trace as _trace
from repro.core.backends import RoundExecutor, resolve_backend, resolve_workers
from repro.core.kernels import (
    color_degree_matrix_t,
    grouped_minmax_by_labels,
    members_order,
    relative_spread,
)
from repro.core.partition import Coloring
from repro.exceptions import ColoringError
from repro.utils.stats import log_mean_threshold

SPLIT_MEANS = ("arithmetic", "geometric")
ERROR_MODES = ("absolute", "relative")
STRATEGIES = ("greedy", "batched")

#: colors per fused boundary-column pass (2 directions x chunk rows kept
#: live at once, so transient memory stays a few n-vectors)
_COLUMN_CHUNK = 2
#: cell budget (colors x member rows, both directions) per degree-slice
#: pass in the row-group refresh — bounds the transient block to ~0.5 MB
#: regardless of the split color's size
_SLICE_CELLS = 24576
#: edge budget per refresh chunk: caps the gathered position/weight
#: arrays so a split of a huge color never holds O(nnz(color)) edge
#: temporaries at once (the budget scales with n because O(n) column
#: transients exist regardless)
_EDGE_CHUNK = 4096
#: below this many column cells (4n) a multi-chunk split accumulates the
#: column scatter densely per chunk; above it, keys are collected for
#: one final bincount (dense per-chunk adds would thrash at large n,
#: holding the keys would spike transients at small n)
_COLUMN_ACCUM_CELLS = 1 << 20


def coerce_adjacency(graph) -> sp.csr_matrix:
    """Accept a WeightedDiGraph, networkx graph, or (sparse) matrix."""
    from repro.graphs.digraph import WeightedDiGraph

    if isinstance(graph, WeightedDiGraph):
        return graph.to_csr()
    if sp.issparse(graph):
        matrix = graph.tocsr().astype(np.float64, copy=False)
        if matrix is graph and matrix.data.flags.writeable:
            # Already-float64 CSR inputs come back as the same object;
            # snapshot them so caller-side mutation cannot corrupt the
            # engine's maintained state mid-run.  (Format or dtype
            # conversions above already allocated fresh arrays.)
            # Read-only inputs — memmapped edge-store snapshots — are
            # immutable by construction, and copying one would pull the
            # whole file resident, defeating the out-of-core path.
            matrix = matrix.copy()
    elif isinstance(graph, np.ndarray):
        matrix = sp.csr_matrix(graph, dtype=np.float64)
    else:
        # Duck-type networkx: it has `adj` and `nodes`.
        if hasattr(graph, "adj") and hasattr(graph, "nodes"):
            from repro.graphs.digraph import WeightedDiGraph as _G

            return _G.from_networkx(graph).to_csr()
        raise TypeError(f"cannot interpret {type(graph).__name__} as a graph")
    if matrix.shape[0] != matrix.shape[1]:
        raise ColoringError(f"adjacency must be square, got {matrix.shape}")
    return matrix


def coerce_adjacency_pair(graph) -> tuple[sp.csr_matrix, sp.csc_matrix]:
    """CSR *and* CSC snapshots for the engine's two scan directions.

    ``WeightedDiGraph`` inputs reuse the graph's own cached CSC — for
    edge-store graphs that view is memmap-backed, so deriving a resident
    CSC from the CSR here would silently re-materialize the whole edge
    list in RAM.  Every other input derives the CSC from the coerced CSR
    exactly as before (``to_csc`` caches the same conversion, so the
    two paths agree bit-for-bit).
    """
    from repro.graphs.digraph import WeightedDiGraph

    if isinstance(graph, WeightedDiGraph):
        return graph.to_csr(), graph.to_csc()
    csr = coerce_adjacency(graph)
    return csr, csr.tocsc()


def split_eject_mask(
    degrees: np.ndarray, split_mean: str, relative: bool = False
) -> np.ndarray:
    """Boolean mask of the members a split ejects into a fresh color.

    This is the threshold rule of Algorithm 1 lines 11-13, shared by the
    static :class:`Rothko` engine and the streaming
    :class:`repro.dynamic.DynamicColoring` repair loop.  ``degrees`` holds
    the witnessing block degrees of the color's members.  Raises
    :class:`ColoringError` when the degrees are constant (no proper split
    exists).
    """
    if relative and degrees.min() == 0.0 < degrees.max():
        # Zero is similar only to itself under the relative relation: the
        # only valid move is separating the zero-degree members.
        return degrees > 0.0
    if split_mean == "geometric" or relative:
        threshold = log_mean_threshold(degrees)
    else:
        threshold = float(degrees.mean())
    eject_mask = degrees > threshold
    if not eject_mask.any() or eject_mask.all():
        # Numerical edge case: fall back to a midpoint split, which is
        # proper whenever the degrees are not all equal.
        midpoint = (degrees.min() + degrees.max()) / 2.0
        eject_mask = degrees > midpoint
        if not eject_mask.any() or eject_mask.all():
            raise ColoringError(
                "witness has constant degrees; cannot split "
                "(q-error should have been 0)"
            )
    return eject_mask


class RothkoStep:
    """Snapshot emitted after every split of the anytime loop.

    The :attr:`coloring` is materialized lazily on first access (and
    cached): the engine's split history is a forest of parent pointers,
    so the labels at this step are recovered by mapping every color
    created later back onto its ancestor.  Snapshots therefore stay
    valid — and immutable — even after the loop has moved on, while
    callers that never look at them skip the ``O(n)`` copy entirely.
    The engine reference is dropped on first access; a snapshot that is
    retained but never read keeps the engine (and its adjacency
    snapshots) alive — touch ``.coloring`` before shelving a step
    long-term.
    """

    __slots__ = (
        "iteration",
        "n_colors",
        "q_err_before",
        "witness",
        "parent_color",
        "elapsed",
        "_engine",
        "_coloring",
    )

    def __init__(
        self,
        *,
        iteration: int,
        n_colors: int,
        q_err_before: float,
        witness: tuple[int, int, str],
        parent_color: int,
        elapsed: float,
        engine: "Rothko",
    ) -> None:
        #: split counter (1-based)
        self.iteration = iteration
        #: number of colors after this split
        self.n_colors = n_colors
        #: max unweighted q-error of the coloring *before* this split
        self.q_err_before = q_err_before
        #: (source_color, target_color, direction) that witnessed the split
        self.witness = witness
        #: engine color id that was split (the new color's parent)
        self.parent_color = parent_color
        #: seconds since the run started
        self.elapsed = elapsed
        self._engine = engine
        self._coloring: Coloring | None = None

    @property
    def new_color(self) -> int:
        """Engine color id created by this split (always the highest)."""
        return self.n_colors - 1

    @property
    def coloring(self) -> Coloring:
        """Coloring after this split (lazily materialized, cached)."""
        if self._coloring is None:
            self._coloring = self._engine.coloring_at(self.n_colors)
            # Once materialized the engine reference is dead weight —
            # drop it so a retained snapshot does not pin the engine's
            # adjacency snapshots and k x k state in memory.
            self._engine = None
        return self._coloring

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RothkoStep):
            return NotImplemented
        return (
            self.iteration == other.iteration
            and self.n_colors == other.n_colors
            and self.q_err_before == other.q_err_before
            and self.witness == other.witness
            and self.elapsed == other.elapsed
            and self.coloring == other.coloring
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.iteration,
                self.n_colors,
                self.q_err_before,
                self.witness,
                self.elapsed,
                self.coloring,
            )
        )

    def __repr__(self) -> str:
        return (
            f"RothkoStep(iteration={self.iteration}, "
            f"n_colors={self.n_colors}, q_err_before={self.q_err_before!r}, "
            f"witness={self.witness!r}, elapsed={self.elapsed!r})"
        )


@dataclass(frozen=True)
class RothkoResult:
    """Final output of :func:`q_color`."""

    coloring: Coloring
    max_q_err: float
    n_iterations: int
    elapsed: float

    @property
    def n_colors(self) -> int:
        return self.coloring.n_colors


class Rothko:
    """Incremental engine for Algorithm 1.

    Parameters
    ----------
    graph:
        Graph or square adjacency matrix.
    initial:
        Starting partition (default: the trivial one-color partition).
        Rothko only ever splits, so initial classes are never merged —
        this is how the LP and flow pipelines pin special nodes.
    alpha, beta:
        Witness weighting exponents (Algorithm 1 line 7).  The paper uses
        ``(0, 0)`` for max-flow, ``(1, 0)`` for LPs, ``(1, 1)`` for
        centrality.
    split_mean:
        ``"arithmetic"`` (default) or ``"geometric"`` — the split
        threshold (Sec. 5.2 recommends geometric for scale-free graphs
        with non-negative weights).
    frozen:
        Initial color ids that must never be split (e.g. source/sink).
    error_mode:
        ``"absolute"`` (default) targets the q-stable relation
        ``|u - v| <= q``; ``"relative"`` targets the eps-relative
        relation ``u e^-eps <= v <= u e^eps`` (Sec. 3.1).  In relative
        mode the per-pair error is ``log(max/min)`` of the block degrees
        (``inf`` when zero and nonzero degrees mix — zero is similar
        only to itself), weights must be non-negative, and the split
        threshold is always geometric.
    strategy:
        ``"greedy"`` (default) performs one split per iteration at the
        single best witness — the paper-exact Algorithm 1.
        ``"batched"`` splits at the top-``batch_size`` non-conflicting
        witnesses per round and fuses their state refreshes, amortizing
        per-split overhead at large color budgets.  Batched rounds obey
        the same stopping rules; the resulting coloring is not
        split-for-split identical to greedy but reaches a comparable
        q-error at equal ``k`` (the fidelity contract the test suite
        enforces).
    batch_size:
        Witnesses per batched round (default 8).  Ignored under the
        greedy strategy.
    backend:
        Kernel backend: a name (``"numpy"``, ``"numba"``, ``"torch"``,
        ``"torch:cuda"``, ``"auto"``), a resolved
        :class:`~repro.core.backends.base.Backend` instance, or ``None``
        — which consults the ``REPRO_BACKEND`` environment variable and
        falls back to auto-detection.  All backends produce bit-identical
        colorings on CPU; this knob trades wall-clock only.
    workers:
        Worker fan-out for batched rounds (``None`` consults
        ``REPRO_WORKERS``, default 1 = serial).  With more than one
        worker, each round's color-disjoint eject masks and the fused
        refresh are mapped across threads (backends whose kernels
        release the GIL) or a shared-memory process pool (numpy).
        Parallel rounds commit bit-for-bit the serial rounds' splits.
        Ignored under the greedy strategy.
    parallel_mode:
        Override the executor mode (``"serial"``, ``"threads"``,
        ``"processes"``); ``None`` auto-selects from the backend's
        ``parallel_kernels`` flag.
    """

    def __init__(
        self,
        graph,
        initial: Coloring | None = None,
        alpha: float = 0.0,
        beta: float = 0.0,
        split_mean: str = "arithmetic",
        frozen: Iterable[int] = (),
        error_mode: str = "absolute",
        strategy: str = "greedy",
        batch_size: int | None = None,
        backend=None,
        workers: int | None = None,
        parallel_mode: str | None = None,
    ) -> None:
        if split_mean not in SPLIT_MEANS:
            raise ValueError(
                f"split_mean must be one of {SPLIT_MEANS}, got {split_mean!r}"
            )
        if error_mode not in ERROR_MODES:
            raise ValueError(
                f"error_mode must be one of {ERROR_MODES}, got {error_mode!r}"
            )
        if strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}"
            )
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.strategy = strategy
        self.batch_size = int(batch_size) if batch_size is not None else 8
        self._backend = resolve_backend(backend)
        self._workers = resolve_workers(workers)
        self._parallel_mode = parallel_mode
        self._executor: RoundExecutor | None = None
        self._csr, self._csc = coerce_adjacency_pair(graph)
        self.n = self._csr.shape[0]
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.split_mean = split_mean
        self.frozen = frozenset(frozen)
        self.error_mode = error_mode
        if error_mode == "relative":
            if self._csr.nnz and self._csr.data.min() < 0:
                raise ColoringError(
                    "relative error mode requires non-negative weights"
                )
            # Relative splits happen in log space regardless of the
            # requested mean (an arithmetic threshold is meaningless
            # across orders of magnitude).
            self.split_mean = "geometric"

        if initial is None:
            initial = Coloring.trivial(self.n)
        if initial.n != self.n:
            raise ColoringError(
                f"initial coloring has {initial.n} nodes, graph has {self.n}"
            )
        bad_frozen = [c for c in self.frozen if c >= initial.n_colors]
        if bad_frozen:
            raise ColoringError(f"frozen color ids out of range: {bad_frozen}")

        self.labels = initial.labels.copy()
        self.k = initial.n_colors
        self._members: list[np.ndarray] = [
            members.copy() for members in initial.classes()
        ]
        #: split history: parent color of each color (-1 for initial ones)
        self._parent: list[int] = [-1] * self.k
        self._frozen_ids = np.array(sorted(self.frozen), dtype=np.int64)
        #: capacity cap from the tightest color budget seen (see _grow)
        self._capacity_hint: int | None = None
        self._init_state()

    @property
    def backend(self):
        """The resolved kernel :class:`~repro.core.backends.Backend`."""
        return self._backend

    @property
    def workers(self) -> int:
        """Worker count for the batched-round fan-out (1 = sequential)."""
        return self._workers

    # ------------------------------------------------------------------
    # incremental state: U/L, Err, weighted witness scores (all k x k)
    # ------------------------------------------------------------------
    def _init_state(self) -> None:
        """Build the boundary/error/witness state once, memory-flat.

        The ``U``/``L`` matrices are filled by the same chunked
        column-refresh pass the splits use — every color's degree column
        is computed on demand and reduced per group, so no ``k x n``
        matrix ever exists.  ``O(m + n k)`` time, ``O(n)`` transients.
        """
        capacity = max(16, 2 * self.k)
        k = self.k
        self._sizes = np.zeros(capacity, dtype=np.int64)
        self._alpha_pow = np.ones(capacity, dtype=np.float64)
        self._beta_pow = np.ones(capacity, dtype=np.float64)
        # Boundary matrices in "natural" orientation: row = the node's
        # color group, column = the color the degree points at.
        self._u_out = np.zeros((capacity, capacity), dtype=np.float64)
        self._l_out = np.zeros((capacity, capacity), dtype=np.float64)
        self._u_in = np.zeros((capacity, capacity), dtype=np.float64)
        self._l_in = np.zeros((capacity, capacity), dtype=np.float64)
        # The error matrices and the size-weighted witness scores are
        # *derived* from U/L on demand (`_error_matrices`,
        # `_weighted_scores`) — each witness scan is O(k^2) regardless,
        # so maintaining them would only pin more k x k state.
        if k == 0:
            return

        self._sizes[:k] = [m.size for m in self._members]
        sizes_f = self._sizes[:k].astype(np.float64)
        self._alpha_pow[:k] = np.power(sizes_f, self.alpha)
        self._beta_pow[:k] = np.power(sizes_f, self.beta)

        self._update_boundary_columns(range(k))

    def _spread(self, upper: np.ndarray, lower: np.ndarray) -> np.ndarray:
        if self.error_mode == "absolute":
            return upper - lower
        return relative_spread(upper, lower)

    def _error_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """Fresh ``(out_err, in_err)`` in (source, target) orientation,
        derived from the maintained U/L in one ``O(k^2)`` pass."""
        k = self.k
        out_err = self._spread(self._u_out[:k, :k], self._l_out[:k, :k])
        in_err = self._spread(self._u_in[:k, :k], self._l_in[:k, :k]).T
        return out_err, in_err

    def _weighted_scores(
        self, err_out: np.ndarray, err_in: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Size-weighted witness scores ``Err ⊙ C``, frozen rows/columns
        masked to ``-inf`` (an out-witness splits the source color, an
        in-witness the target color).

        Derived from the given error matrices — one ``O(k^2)`` product
        per witness scan, the same order as the argmax itself, in
        exchange for no pinned score matrices and no per-split score
        patching.  May return the error matrices themselves (unweighted,
        unfrozen case); callers must not mutate the result.
        """
        k = self.k
        if self.alpha == 0.0 and self.beta == 0.0:
            # Unweighted witnesses (the paper's max-flow setting): the
            # scores ARE the error matrices; only freeze-masking forces
            # a copy.
            if not self._frozen_ids.size:
                return err_out, err_in
            weighted_out = err_out.copy()
            weighted_in = err_in.copy()
        else:
            weight = self._alpha_pow[:k, None] * self._beta_pow[None, :k]
            weighted_out = err_out * weight
            weighted_in = err_in * weight
        if self._frozen_ids.size:
            weighted_out[self._frozen_ids, :] = -np.inf
            weighted_in[:, self._frozen_ids] = -np.inf
        return weighted_out, weighted_in

    def _grow(self) -> None:
        capacity = self._u_out.shape[0]
        if self.k < capacity:
            return
        new_capacity = max(2 * capacity, self.k + 1)
        if self._capacity_hint is not None and self.k < self._capacity_hint:
            # A known color budget caps the doubling rule so a budgeted
            # run never overshoots its final capacity — but growth still
            # tracks *realized* k, so a generous budget with an early
            # stop (q_tolerance, witness exhaustion) never over-allocates
            # (the k x k matrices are the engine's largest persistent
            # state besides the adjacency snapshots).  Once k passes a
            # stale hint (a follow-up run with a larger or absent
            # budget), plain doubling resumes — clamping there would
            # degrade growth to one reallocation per split.
            new_capacity = min(new_capacity, self._capacity_hint)
        self._grow_to(new_capacity)

    def _grow_to(self, new_capacity: int) -> None:
        capacity = self._u_out.shape[0]
        for name in ("_u_out", "_l_out", "_u_in", "_l_in"):
            old = getattr(self, name)
            grown = np.zeros((new_capacity, new_capacity), dtype=np.float64)
            grown[:capacity, :capacity] = old
            setattr(self, name, grown)
        for name, fill in (
            ("_sizes", 0), ("_alpha_pow", 1.0), ("_beta_pow", 1.0)
        ):
            old = getattr(self, name)
            grown = np.full(new_capacity, fill, dtype=old.dtype)
            grown[:capacity] = old
            setattr(self, name, grown)

    def _update_boundary_columns(self, touched: Iterable[int]) -> None:
        """Recompute U/L columns for the dirtied colors over all groups.

        Each dirty color's two degree columns are rebuilt from the
        adjacency — ``D_out[:, c]`` off the CSC arrays, ``D_in[:, c]``
        off the CSR arrays, fused into one key-offset bincount per chunk
        (``O(nnz(columns) + n)``) — and reduced per group with the shared
        member-order gather + ``reduceat`` (no argsort).  Direct sums, so
        entries are exactly zero iff every term is (the property the
        geometric/relative thresholds need).  The member order is built
        once per call, so a batched round's ``2B`` dirty colors amortize
        it.  Chunks read shared pre-round state and write disjoint U/L
        columns, so the round executor may fan them across threads; the
        scattered cell count is accumulated locally and reported to the
        ``kernels.bincount_cells`` counter once per call, not per chunk.
        """
        k = self.k
        kernel = self._backend
        order, starts = members_order(self._members, self._sizes[:k])
        touched = list(touched)
        chunks = [
            touched[begin:begin + _COLUMN_CHUNK]
            for begin in range(0, len(touched), _COLUMN_CHUNK)
        ]
        csr_arrays = (self._csr.indptr, self._csr.indices, self._csr.data)
        csc_arrays = (self._csc.indptr, self._csc.indices, self._csc.data)
        # The gather inside ``scatter_select_sums`` is O(nnz(members)),
        # so a color covering most of a dense graph (the k=1 trivial
        # coloring, above all) would pull the whole edge list onto the
        # heap.  Accumulating over member sub-ranges bounds the transient
        # at O(n) regardless of m — the chunk cuts depend only on array
        # sizes, so mmap and resident snapshots take identical paths and
        # stay bit-identical.
        edge_budget = max(_EDGE_CHUNK, self.n)

        def refresh_chunk(chunk: list[int]) -> None:
            rows = len(chunk)
            fused = np.zeros((2 * rows, self.n), dtype=np.float64)
            for offset, color in enumerate(chunk):
                members = self._members[color]
                for arrays, row in (
                    (csc_arrays, offset), (csr_arrays, rows + offset)
                ):
                    indptr = arrays[0]
                    counts = indptr[members + 1] - indptr[members]
                    for begin, end in self._row_chunks(
                        counts, max(1, members.size), edge_budget
                    ):
                        fused[row] += kernel.scatter_select_sums(
                            *arrays, members[begin:end], self.n
                        )
            upper, lower = kernel.grouped_minmax_ordered(fused, order, starts)
            self._u_out[:k, chunk] = upper[:rows].T
            self._l_out[:k, chunk] = lower[:rows].T
            self._u_in[:k, chunk] = upper[rows:].T
            self._l_in[:k, chunk] = lower[rows:].T

        if self._workers > 1 and len(chunks) > 1:
            self._round_executor().map(refresh_chunk, chunks)
        else:
            for chunk in chunks:
                refresh_chunk(chunk)
        _obs._active.count(
            "kernels.bincount_cells", 2 * len(touched) * self.n
        )

    def _update_boundary_rowgroups(self, touched: Iterable[int]) -> None:
        """Recompute U/L rows for the dirtied groups over all colors.

        ``O(nnz(members) + |members| k)`` per group via on-demand
        ``(2, k, |members|)`` degree slices (both directions in one
        fused bincount), reduced in chunks bounded by both the slice-cell
        and the edge budget, so neither the block nor the gathered
        position/weight temporaries grow with the color's size or its
        hubs' degrees.  Groups read shared pre-round state and write
        disjoint U/L rows, so the round executor may fan them across
        threads; the per-chunk cell counts accumulate locally and reach
        the ``kernels.bincount_cells`` counter as one add per call.
        """
        k = self.k
        kernel = self._backend
        csr_arrays = (self._csr.indptr, self._csr.indices, self._csr.data)
        csc_arrays = (self._csc.indptr, self._csc.indices, self._csc.data)
        cap = max(16, _SLICE_CELLS // (2 * k))
        edge_budget = max(_EDGE_CHUNK, self.n // 2)
        touched = list(touched)

        def refresh_group(group: int) -> None:
            members = self._members[group]
            counts = (
                self._csr.indptr[members + 1] - self._csr.indptr[members]
                + self._csc.indptr[members + 1] - self._csc.indptr[members]
            )
            upper = lower = None
            for begin, end in self._row_chunks(counts, cap, edge_budget):
                block = kernel.color_degree_slice_pair(
                    csr_arrays, csc_arrays,
                    members[begin:end],
                    self.labels, k,
                )
                chunk_upper = block.max(axis=2)
                chunk_lower = block.min(axis=2)
                if upper is None:
                    upper, lower = chunk_upper, chunk_lower
                else:
                    np.maximum(upper, chunk_upper, out=upper)
                    np.minimum(lower, chunk_lower, out=lower)
            self._u_out[group, :k] = upper[0]
            self._l_out[group, :k] = lower[0]
            self._u_in[group, :k] = upper[1]
            self._l_in[group, :k] = lower[1]

        if self._workers > 1 and len(touched) > 1:
            self._round_executor().map(refresh_group, touched)
        else:
            for group in touched:
                refresh_group(group)
        total_rows = int(sum(self._members[group].size for group in touched))
        _obs._active.count("kernels.bincount_cells", 2 * k * total_rows)

    # ------------------------------------------------------------------
    # error matrices and witness selection
    # ------------------------------------------------------------------
    def error_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """Current ``(out_err, in_err)`` in (source, target) orientation.

        Absolute mode: ``U - L`` (the q-error spread of Algorithm 1).
        Relative mode: ``log(U / L)`` with ``inf`` where zero and nonzero
        degrees mix, so the smallest eps for which the block is
        ``~eps``-regular is exactly this matrix entry.

        Derived from the maintained U/L in ``O(k^2)`` (fresh arrays are
        returned; mutating them does not disturb the engine).
        """
        return self._error_matrices()

    def _find_witness(self) -> tuple[float, float, int, int, str]:
        """Return (max_raw_err, max_weighted_err, i, j, direction).

        Pure ``O(k^2)`` spread + argmax scans over the maintained U/L —
        no degree-matrix sweep, no argsort.
        """
        k = self.k
        if k == 0:
            return 0.0, 0.0, 0, 0, "out"
        err_out, err_in = self._error_matrices()
        raw_max = float(max(err_out.max(initial=0.0), err_in.max(initial=0.0)))

        weighted_out, weighted_in = self._weighted_scores(err_out, err_in)
        flat_out = int(np.argmax(weighted_out))
        flat_in = int(np.argmax(weighted_in))
        best_out = weighted_out.flat[flat_out]
        best_in = weighted_in.flat[flat_in]
        if best_out >= best_in:
            i, j = divmod(flat_out, k)
            return raw_max, float(best_out), i, j, "out"
        i, j = divmod(flat_in, k)
        return raw_max, float(best_in), i, j, "in"

    # ------------------------------------------------------------------
    # splitting
    # ------------------------------------------------------------------
    def _witness_degrees(self, i: int, j: int, direction: str) -> np.ndarray:
        """The split-threshold degree vector ``D[j, members(i)]`` (out)
        or ``D[i, members(j)]`` (in), computed on demand off the index
        arrays in ``O(nnz(members))`` — chunk-bounded like every other
        degree gather."""
        if direction == "out":
            members, target = self._members[i], j
            indptr = self._csr.indptr
        else:
            members, target = self._members[j], i
            indptr = self._csc.indptr
        counts = indptr[members + 1] - indptr[members]
        return self._threshold_degrees(members, counts, direction, target)

    def _row_chunks(
        self, counts: np.ndarray, cap: int, edge_budget: int
    ) -> list[tuple[int, int]]:
        """Partition member rows into chunks bounded by a row cap and an
        edge budget (rows are atomic, so a single hub row may exceed the
        budget on its own)."""
        r = counts.size
        if r <= cap and int(counts.sum()) <= edge_budget:
            return [(0, r)]
        cum = np.cumsum(counts, dtype=np.int64)
        bounds: list[tuple[int, int]] = []
        start = 0
        while start < r:
            prev = int(cum[start - 1]) if start else 0
            end = int(np.searchsorted(cum, prev + edge_budget, side="right"))
            end = max(min(end, start + cap, r), start + 1)
            bounds.append((start, end))
            start = end
        return bounds

    def _threshold_degrees(
        self, members: np.ndarray, counts: np.ndarray,
        direction: str, target: int,
    ) -> np.ndarray:
        """Split-threshold degree vector ``D[target, members]``, gathered
        in edge-budget chunks so no O(nnz(members)) temporary is held."""
        compressed = self._csr if direction == "out" else self._csc
        r = members.size
        degrees = np.empty(r, dtype=np.float64)
        # Single direction, fewer temporaries per edge than the refresh
        # pass — a doubled edge budget keeps the same transient bound.
        for begin, end in self._row_chunks(
            counts, r, max(2 * _EDGE_CHUNK, self.n // 2)
        ):
            degrees[begin:end] = self._backend.select_degrees_toward(
                compressed.indptr, compressed.indices, compressed.data,
                members[begin:end], self.labels, target,
            )
        return degrees

    def _split(self, i: int, j: int, direction: str) -> int:
        """Greedy split with a fused, chunk-bounded state refresh.

        The threshold degree vector, both row-group slices, and both
        fresh boundary columns are key-offset bincounts over the split
        color's edges, gathered in edge-budget chunks — one fused
        kernel pass per chunk instead of a kernel call per piece of
        state, and never more than a chunk of edge temporaries live.
        """
        split_color = i if direction == "out" else j
        members = self._members[split_color]
        csr, csc = self._csr, self._csc
        counts_out = csr.indptr[members + 1] - csr.indptr[members]
        counts_in = csc.indptr[members + 1] - csc.indptr[members]
        if direction == "out":
            degrees = self._threshold_degrees(members, counts_out, "out", j)
        else:
            degrees = self._threshold_degrees(members, counts_in, "in", i)
        eject_mask = split_eject_mask(
            degrees, self.split_mean, relative=self.error_mode == "relative"
        )
        self._apply_split(
            split_color, members[~eject_mask], members[eject_mask]
        )
        self._refresh_split(
            split_color, members, eject_mask, counts_out, counts_in
        )
        return split_color

    def _refresh_split(
        self,
        split_color: int,
        pre_members: np.ndarray,
        eject_mask: np.ndarray,
        counts_out: np.ndarray,
        counts_in: np.ndarray,
    ) -> None:
        """Patch U/L after a greedy split in fused chunk passes.

        Iterates the *pre-split* member list (``retain ∪ eject`` in the
        original order) in chunks bounded by the slice-cell and edge
        budgets.  Per chunk, one bincount scatters both row-group slice
        layers *and* both dirty boundary columns: the labels are already
        post-split, so slice entries toward the sibling color come out
        exact (direct sums, no residues), and the eject mask routes
        every edge to its post-split column.  The chunk's slice block is
        reduced into the ``c``/``t`` row-groups immediately; single-chunk
        splits scatter the column cells in the same bincount, multi-chunk
        splits collect column keys into an O(n)-bounded buffer scattered
        on fill, so the ``4n`` column range is touched once per ~``4n``
        edges rather than once per chunk — and never O(nnz(color)) keys.
        """
        c, t = split_color, self.k - 1
        k, n = self.k, self.n
        csr, csc = self._csr, self._csc
        kernel = self._backend
        labels = self.labels
        r = pre_members.size
        cap = max(16, _SLICE_CELLS // (2 * k))
        bounds = self._row_chunks(
            counts_out + counts_in, cap, max(_EDGE_CHUNK, n // 2)
        )
        single = len(bounds) == 1
        accumulate = not single and 4 * n <= _COLUMN_ACCUM_CELLS
        collect = not single and not accumulate
        if collect:
            # Large-n multi-chunk splits: collect column keys into a
            # buffer bounded at O(n) and scatter-accumulate whenever it
            # fills, so the dense 4n add amortizes to one per ~4n edges
            # while a whole-graph color never holds O(nnz(color)) keys.
            # A buffer covering the full edge total keeps the historical
            # single-scatter behavior bit for bit.
            total_edges = int(counts_out.sum() + counts_in.sum())
            buffer_cap = min(
                total_edges, max(4 * n, _COLUMN_ACCUM_CELLS)
            )
            key_buffer = np.empty(buffer_cap, dtype=np.int64)
            weight_buffer = np.empty(buffer_cap, dtype=np.float64)
            filled = 0

        # The member lists are a color-sorted node order and the sizes
        # are maintained, so node -> rank within that order is one
        # scatter, and the column scatter below lands directly in
        # reduceat layout — no post-hoc (4, n) gather.
        order, starts = members_order(self._members, self._sizes[:k])
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n, dtype=np.int64)

        # Single-chunk splits (the common case) scatter the column cells
        # in the same bincount as the slice; multi-chunk splits either
        # accumulate dense column contributions (small n) or fill the
        # preallocated buffers (large n), so the 4n column range is
        # zeroed once per split, not once per chunk.
        fused: np.ndarray | None = None
        upper = lower = None
        for begin, end in bounds:
            rows = pre_members[begin:end]
            rc = end - begin
            chunk_out = counts_out[begin:end]
            chunk_in = counts_in[begin:end]
            positions = kernel.take_ranges(csr.indptr[rows], chunk_out)
            nodes_o = csr.indices[positions]
            w_o = csr.data[positions]
            positions = kernel.take_ranges(csc.indptr[rows], chunk_in)
            nodes_i = csc.indices[positions]
            w_i = csc.data[positions]
            del positions
            mask = eject_mask[begin:end]
            # Remap local row ids retained-first so the slice block's
            # last axis is [retain | eject] and the group reductions are
            # plain views, not boolean-mask copies.
            retained = int(rc - mask.sum())
            remap = np.empty(rc, dtype=np.int64)
            remap[~mask] = np.arange(retained, dtype=np.int64)
            remap[mask] = np.arange(retained, rc, dtype=np.int64)
            local_o = np.repeat(remap, chunk_out)
            local_i = np.repeat(remap, chunk_in)
            cells = 2 * k * rc
            # Column keys: D_out[:, c|t] sums edges *into* the members
            # (CSC positions, rows 0-1), D_in[:, c|t] edges out of them
            # (CSR positions, rows 2-3); the remapped local id picks c
            # vs t, and the rank mapping puts nodes in reduceat order.
            keys_cols_i = (local_i >= retained) * n + rank[nodes_i]
            keys_cols_o = (2 + (local_o >= retained)) * n + rank[nodes_o]
            keys_slice = [
                labels[nodes_o] * rc + local_o,
                (k + labels[nodes_i]) * rc + local_i,
            ]
            if single:
                combined = kernel.bincount(
                    np.concatenate(
                        keys_slice
                        + [cells + keys_cols_i, cells + keys_cols_o]
                    ),
                    np.concatenate([w_o, w_i, w_i, w_o]),
                    cells + 4 * n,
                )
                block = combined[:cells].reshape(2, k, rc)
                fused = combined[cells:].reshape(4, n)
                for group, lo, hi in ((c, 0, retained), (t, retained, rc)):
                    sub = block[:, :, lo:hi]
                    self._u_out[group, :k] = sub[0].max(axis=1)
                    self._l_out[group, :k] = sub[0].min(axis=1)
                    self._u_in[group, :k] = sub[1].max(axis=1)
                    self._l_in[group, :k] = sub[1].min(axis=1)
            else:
                block = kernel.bincount(
                    np.concatenate(keys_slice),
                    np.concatenate([w_o, w_i]),
                    cells,
                ).reshape(2, k, rc)
                if accumulate:
                    part = kernel.bincount(
                        np.concatenate([keys_cols_i, keys_cols_o]),
                        np.concatenate([w_i, w_o]),
                        4 * n,
                    )
                    if fused is None:
                        fused = part.reshape(4, n)
                    else:
                        fused += part.reshape(4, n)
                else:
                    for keys, weights in (
                        (keys_cols_i, w_i), (keys_cols_o, w_o)
                    ):
                        if filled + keys.size > buffer_cap:
                            # Flush: row incidences are <= 2n per atomic
                            # hub row and the cap is >= 4n, so a drained
                            # buffer always fits the incoming chunk.
                            part = kernel.bincount(
                                key_buffer[:filled],
                                weight_buffer[:filled],
                                4 * n,
                            )
                            if fused is None:
                                fused = part.reshape(4, n)
                            else:
                                fused += part.reshape(4, n)
                            filled = 0
                        key_buffer[filled:filled + keys.size] = keys
                        weight_buffer[filled:filled + keys.size] = weights
                        filled += keys.size
                if upper is None:
                    # [group (c, t), direction, color]
                    upper = np.full((2, 2, k), -np.inf)
                    lower = np.full((2, 2, k), np.inf)
                for group_index, lo, hi in ((0, 0, retained), (1, retained, rc)):
                    if lo < hi:
                        sub = block[:, :, lo:hi]
                        np.maximum(
                            upper[group_index], sub.max(axis=2),
                            out=upper[group_index],
                        )
                        np.minimum(
                            lower[group_index], sub.min(axis=2),
                            out=lower[group_index],
                        )
        if not single:
            for group_index, group in ((0, c), (1, t)):
                self._u_out[group, :k] = upper[group_index, 0]
                self._l_out[group, :k] = lower[group_index, 0]
                self._u_in[group, :k] = upper[group_index, 1]
                self._l_in[group, :k] = lower[group_index, 1]
            if collect:
                part = kernel.bincount(
                    key_buffer[:filled],
                    weight_buffer[:filled],
                    4 * n,
                )
                if fused is None:
                    fused = part.reshape(4, n)
                else:
                    fused += part.reshape(4, n)

        _obs._active.count("kernels.bincount_cells", 2 * k * r + 4 * n)
        col_upper = np.maximum.reduceat(fused, starts, axis=1)
        col_lower = np.minimum.reduceat(fused, starts, axis=1)
        cols = [c, t]
        self._u_out[:k, cols] = col_upper[:2].T
        self._l_out[:k, cols] = col_lower[:2].T
        self._u_in[:k, cols] = col_upper[2:].T
        self._l_in[:k, cols] = col_lower[2:].T

    def _apply_split(
        self, split_color: int, retain: np.ndarray, eject: np.ndarray
    ) -> None:
        """Commit one split's labels/members/sizes (no state refresh)."""
        self._grow()
        new_color = self.k
        self.k += 1
        self.labels[eject] = new_color
        self._members[split_color] = retain
        self._members.append(eject)
        self._parent.append(split_color)
        for color, members in ((split_color, retain), (new_color, eject)):
            self._sizes[color] = members.size
            size_f = np.float64(members.size)
            self._alpha_pow[color] = np.power(size_f, self.alpha)
            self._beta_pow[color] = np.power(size_f, self.beta)

    # ------------------------------------------------------------------
    # batched split rounds
    # ------------------------------------------------------------------
    def _round_executor(self) -> RoundExecutor:
        """The engine's round executor, created lazily on first use.

        Mode auto-selection follows the backend's ``parallel_kernels``
        flag (threads for GIL-releasing kernels, the shared-memory
        process pool for numpy); ``workers == 1`` yields the serial
        executor, which costs nothing.
        """
        if self._executor is None:
            self._executor = RoundExecutor.resolve(
                self._workers,
                self._parallel_mode,
                self._backend.parallel_kernels,
            )
        return self._executor

    def release(self) -> None:
        """Shut down the round executor's pools and shared memory.

        Idempotent; called automatically when a batched ``steps()``
        generator finishes.  Only needed explicitly by callers that
        abandon an engine mid-run with ``workers > 1``.
        """
        if self._executor is not None:
            self._executor.release()
            self._executor = None

    def _eject_job_mask(self, job: tuple) -> np.ndarray | None:
        """In-process eject mask for one witness job (the serial and
        thread-mode body of the round fan-out; the process mode runs
        :func:`repro.core.backends.executor._eject_mask_task` against
        the shared-memory mirror instead).  ``None`` drops the witness
        for this round (constant degrees)."""
        direction, members, target, split_mean, relative = job
        indptr = (self._csr if direction == "out" else self._csc).indptr
        counts = indptr[members + 1] - indptr[members]
        degrees = self._threshold_degrees(members, counts, direction, target)
        try:
            return split_eject_mask(degrees, split_mean, relative=relative)
        except ColoringError:
            # Pure floating-point guard: a positive per-direction score
            # implies non-constant degrees, so this can only trip on
            # sub-ulp ties; dropping the witness for one round is safe.
            return None

    def _find_witness_batch(
        self, limit: int, q_tolerance: float = 0.0
    ) -> tuple[float, list[tuple[int, int, str]]]:
        """Current max raw error and the top-``limit`` non-conflicting
        witnesses, best first.

        One ``O(k^2)`` scan serves both the round's stopping check (the
        returned raw maximum) and the batch selection: the positive
        weighted scores of both directions are partially sorted, then
        greedily filtered so the chosen witnesses' color pairs are
        pairwise disjoint — every chosen split is decided against the
        same pre-round state *and* no chosen witness's degree vector or
        membership is invalidated by another split in the round.  Pairs
        already within ``q_tolerance`` are excluded: a round never
        spends budget on splits the stopping rule no longer requires
        (greedy re-checks the tolerance after every single split; rounds
        re-check between rounds and filter members here).
        """
        k = self.k
        if k == 0 or limit <= 0:
            return 0.0, []
        err_out, err_in = self._error_matrices()
        raw = np.concatenate([err_out.ravel(), err_in.ravel()])
        raw_max = float(raw.max(initial=0.0))
        weighted_out, weighted_in = self._weighted_scores(err_out, err_in)
        scores = np.concatenate([weighted_out.ravel(), weighted_in.ravel()])
        # NaN scores (inf error x zero size weight) stop greedy; exclude
        # them outright so argpartition cannot surface them first.
        eligible = np.flatnonzero(
            (np.nan_to_num(scores, nan=-np.inf) > 0) & (raw > q_tolerance)
        )
        if eligible.size == 0:
            return raw_max, []
        oversample = min(eligible.size, 4 * limit)
        top = eligible[
            np.argpartition(scores[eligible], -oversample)[-oversample:]
        ]
        top = top[np.argsort(scores[top], kind="stable")[::-1]]
        used: set[int] = set()
        picked: list[tuple[int, int, str]] = []
        for flat in top.tolist():
            direction = "out" if flat < k * k else "in"
            i, j = divmod(flat % (k * k), k)
            if i in used or j in used:
                continue
            used.update((i, j))
            picked.append((i, j, direction))
            if len(picked) == limit:
                break
        return raw_max, picked

    def _apply_batch(
        self, picked: list[tuple[int, int, str]]
    ) -> list[tuple[tuple[int, int, str], int]]:
        """Split at every chosen witness, then refresh state once.

        All eject masks are decided against the pre-round state (the
        witnesses are color-disjoint, so each degree vector is still
        exact when its split commits), then the ``2B`` dirtied colors'
        columns, row-groups, and error entries are refreshed in fused
        passes sharing one member-order gather.

        With ``workers > 1`` the masks fan across the round executor —
        read-only work against the pre-round snapshot, collected in
        witness order, so the parallel round commits exactly the serial
        round's splits.
        """
        relative = self.error_mode == "relative"
        jobs: list[tuple] = []
        for i, j, direction in picked:
            split_color = i if direction == "out" else j
            target = j if direction == "out" else i
            jobs.append((
                direction, self._members[split_color], target,
                self.split_mean, relative,
            ))
        executor = self._round_executor()
        if executor.mode == "processes":
            executor.attach_graph(
                (self._csr.indptr, self._csr.indices, self._csr.data),
                (self._csc.indptr, self._csc.indices, self._csc.data),
                self.labels,
            )
        masks = executor.eject_masks(jobs, self.labels, self._eject_job_mask)
        pending: list[tuple[tuple[int, int, str], int, np.ndarray]] = []
        for witness, eject_mask in zip(picked, masks):
            if eject_mask is None:
                continue
            i, j, direction = witness
            split_color = i if direction == "out" else j
            pending.append((witness, split_color, eject_mask))
        splits: list[tuple[tuple[int, int, str], int]] = []
        dirty: list[int] = []
        for witness, split_color, eject_mask in pending:
            members = self._members[split_color]
            self._apply_split(
                split_color, members[~eject_mask], members[eject_mask]
            )
            dirty.extend((split_color, self.k - 1))
            splits.append((witness, split_color))
        if dirty:
            self._update_boundary_columns(dirty)
            self._update_boundary_rowgroups(dirty)
        return splits

    # ------------------------------------------------------------------
    # the anytime loop
    # ------------------------------------------------------------------
    def coloring(self) -> Coloring:
        """Current partition as an immutable :class:`Coloring`."""
        return Coloring(self.labels)

    def members(self, color: int) -> np.ndarray:
        """Current member indices of an engine color (do not mutate).

        Engine color ids are *not* canonical :class:`Coloring` ids: new
        colors are appended in split order, while ``coloring()``
        renumbers by first occurrence.  Callers tracking engine state
        (e.g. the pipeline's block-weight tracker) work in engine-id
        space and translate at the boundary.
        """
        if not 0 <= color < self.k:
            raise ColoringError(f"color {color} out of range [0, {self.k})")
        return self._members[color]

    def max_q_err(self) -> float:
        """Max unweighted q-error of the current coloring.

        Served from the maintained error matrices in ``O(k^2)`` — no
        degree-matrix rebuild.  Equals ``RothkoResult.max_q_err`` of a
        fresh run stopped at this state.
        """
        return self._find_witness()[0]

    def coloring_at(self, n_colors: int) -> Coloring:
        """Reconstruct the coloring as of the split that reached
        ``n_colors`` colors, by replaying the parent pointers backwards."""
        if n_colors >= self.k:
            return self.coloring()
        remap = np.arange(self.k, dtype=np.int64)
        for color in range(n_colors, self.k):
            # parent < color, so remap[parent] is already resolved to an
            # ancestor that existed at the requested step.
            remap[color] = remap[self._parent[color]]
        return Coloring(remap[self.labels])

    def steps(
        self,
        max_colors: int | None = None,
        q_tolerance: float = 0.0,
        max_iterations: int | None = None,
    ) -> Iterator[RothkoStep]:
        """Run Algorithm 1, yielding a snapshot after every split.

        Stops when ``max_colors`` is reached, the max q-error drops to
        ``q_tolerance``, no splittable witness remains, or
        ``max_iterations`` splits have been performed.

        Under ``strategy="batched"`` the loop advances a whole round of
        non-conflicting splits at a time; one step is still yielded per
        split (snapshots replay exactly as in greedy mode), with
        ``q_err_before`` reporting the error of the *pre-round* state
        for every split of that round.
        """
        if max_colors is None and max_iterations is None and q_tolerance <= 0:
            # Without any bound the loop would refine to the discrete
            # partition, which is legal but rarely intended; allow it but
            # bound iterations by n for safety.
            max_iterations = self.n
        if max_colors is not None and max_colors > self.k:
            # Remember the budget so the doubling rule stops exactly at
            # it (no color count can exceed n, so clamp there too).
            hint = min(max_colors, max(self.n, 1))
            if self._capacity_hint is None or hint > self._capacity_hint:
                self._capacity_hint = hint
        start = time.perf_counter()
        if self.strategy == "batched":
            yield from self._steps_batched(
                max_colors, q_tolerance, max_iterations, start
            )
            return
        iteration = 0
        while True:
            if max_colors is not None and self.k >= max_colors:
                return
            if max_iterations is not None and iteration >= max_iterations:
                return
            raw_err, weighted_err, i, j, direction = self._find_witness()
            if raw_err <= q_tolerance:
                return
            if weighted_err <= 0 or np.isnan(weighted_err):
                # All remaining witnesses are frozen or weightless.  An
                # infinite witness (relative mode, mixed zero/nonzero
                # degrees) is valid and the split proceeds.
                return
            with _trace.span(
                "rothko.split",
                witness=(i, j, direction),
                q_err_before=raw_err,
                size=int(self._sizes[i if direction == "out" else j]),
            ):
                parent_color = self._split(i, j, direction)
            recorder = _obs._active
            recorder.count("rothko.splits")
            recorder.gauge("rothko.max_q_err", raw_err)
            iteration += 1
            yield RothkoStep(
                iteration=iteration,
                n_colors=self.k,
                q_err_before=raw_err,
                witness=(i, j, direction),
                parent_color=parent_color,
                elapsed=time.perf_counter() - start,
                engine=self,
            )

    def _steps_batched(
        self,
        max_colors: int | None,
        q_tolerance: float,
        max_iterations: int | None,
        start: float,
    ) -> Iterator[RothkoStep]:
        """Round-based variant of the anytime loop (``strategy="batched"``)."""
        try:
            yield from self._rounds_batched(
                max_colors, q_tolerance, max_iterations, start
            )
        finally:
            # Pools and shared memory are per-run transients; the engine
            # itself stays usable (a follow-up run re-creates them).
            self.release()

    def _rounds_batched(
        self,
        max_colors: int | None,
        q_tolerance: float,
        max_iterations: int | None,
        start: float,
    ) -> Iterator[RothkoStep]:
        iteration = 0
        while True:
            limit = self.batch_size
            if max_colors is not None:
                limit = min(limit, max_colors - self.k)
            if max_iterations is not None:
                limit = min(limit, max_iterations - iteration)
            if limit <= 0:
                return
            raw_err, picked = self._find_witness_batch(limit, q_tolerance)
            if raw_err <= q_tolerance or not picked:
                return
            k_before = self.k
            with _trace.span(
                "rothko.round", witnesses=len(picked), q_err_before=raw_err
            ) as round_span:
                splits = self._apply_batch(picked)
                round_span.set(splits=len(splits))
            recorder = _obs._active
            recorder.count("rothko.rounds")
            recorder.count("rothko.splits", len(splits))
            recorder.gauge("rothko.max_q_err", raw_err)
            if not splits:
                return
            for offset, (witness, parent_color) in enumerate(splits):
                iteration += 1
                yield RothkoStep(
                    iteration=iteration,
                    n_colors=k_before + offset + 1,
                    q_err_before=raw_err,
                    witness=witness,
                    parent_color=parent_color,
                    elapsed=time.perf_counter() - start,
                    engine=self,
                )

    def run(
        self,
        max_colors: int | None = None,
        q_tolerance: float = 0.0,
        max_iterations: int | None = None,
    ) -> RothkoResult:
        """Drive :meth:`steps` to completion and return the result."""
        start = time.perf_counter()
        iterations = 0
        with _trace.span(
            "rothko.run",
            n=self.n,
            strategy=self.strategy,
            backend=self._backend.name,
            workers=self._workers,
            max_colors=max_colors,
            q_tolerance=q_tolerance,
        ) as run_span:
            for step in self.steps(
                max_colors=max_colors,
                q_tolerance=q_tolerance,
                max_iterations=max_iterations,
            ):
                iterations = step.iteration
            raw_err, _, _, _, _ = self._find_witness()
            run_span.set(n_colors=self.k, max_q_err=raw_err)
        _obs._active.gauge("rothko.max_q_err", raw_err)
        return RothkoResult(
            coloring=self.coloring(),
            max_q_err=raw_err,
            n_iterations=iterations,
            elapsed=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def verify_state(self, atol: float = 1e-8, rtol: float = 1e-9) -> None:
        """Check every piece of maintained state against a from-scratch
        recompute; raises :class:`ColoringError` on divergence.

        The invariant test suite calls this after every split — it is the
        executable definition of what the incremental updates maintain.
        The reference recompute builds the dense ``k x n`` degree
        matrices the flat engine never keeps, so this is a diagnostic
        for test-scale graphs, not a production code path.
        """
        n, k = self.n, self.k
        if sorted(np.unique(self.labels).tolist()) != list(range(k)):
            raise ColoringError("color ids are not contiguous")
        for color, members in enumerate(self._members):
            if not np.array_equal(
                np.sort(members), np.flatnonzero(self.labels == color)
            ):
                raise ColoringError(f"member list of color {color} is stale")
        if not np.array_equal(
            self._sizes[:k], [m.size for m in self._members]
        ):
            raise ColoringError("maintained sizes are stale")
        d_out = color_degree_matrix_t(
            self._csr.indptr, self._csr.indices, self._csr.data,
            self.labels, k,
        )
        d_in = color_degree_matrix_t(
            self._csc.indptr, self._csc.indices, self._csc.data,
            self.labels, k,
        )
        u_out, l_out = grouped_minmax_by_labels(d_out.T, self.labels, k)
        u_in, l_in = grouped_minmax_by_labels(d_in.T, self.labels, k)
        checks = [
            ("U_out", self._u_out[:k, :k], u_out),
            ("L_out", self._l_out[:k, :k], l_out),
            ("U_in", self._u_in[:k, :k], u_in),
            ("L_in", self._l_in[:k, :k], l_in),
        ]
        derived_err_out, derived_err_in = self._error_matrices()
        checks += [
            ("Err_out", derived_err_out, self._spread(u_out, l_out)),
            ("Err_in", derived_err_in, self._spread(u_in, l_in).T),
        ]
        weight = self._alpha_pow[:k, None] * self._beta_pow[None, :k]
        w_out = self._spread(u_out, l_out) * weight
        w_in = self._spread(u_in, l_in).T * weight
        if self._frozen_ids.size:
            w_out[self._frozen_ids, :] = -np.inf
            w_in[:, self._frozen_ids] = -np.inf
        derived_out, derived_in = self._weighted_scores(
            derived_err_out, derived_err_in
        )
        checks += [
            ("weighted_out", derived_out, w_out),
            ("weighted_in", derived_in, w_in),
        ]
        for name, maintained, scratch in checks:
            # Maintained sums accumulate edge weights in a different
            # order than the scratch bincount, so rounding differences
            # are relative to the weight magnitude — and rtol contributes
            # nothing on exact-zero entries.  Scale atol by magnitude.
            finite = scratch[np.isfinite(scratch)]
            scale = (
                max(1.0, float(np.abs(finite).max())) if finite.size else 1.0
            )
            if not np.allclose(
                maintained, scratch, atol=atol * scale, rtol=rtol,
                equal_nan=True,
            ):
                raise ColoringError(
                    f"maintained {name} diverged from scratch recompute"
                )


def q_color(
    graph,
    n_colors: int | None = None,
    q: float | None = None,
    alpha: float = 0.0,
    beta: float = 0.0,
    split_mean: str = "arithmetic",
    initial: Coloring | None = None,
    frozen: Iterable[int] = (),
    max_iterations: int | None = None,
    strategy: str = "greedy",
    batch_size: int | None = None,
    backend=None,
    workers: int | None = None,
) -> RothkoResult:
    """Compute a quasi-stable coloring with the Rothko heuristic.

    Exactly one stopping knob is required: a color budget ``n_colors``
    and/or a target maximum q-error ``q``.  ``strategy="batched"``
    enables the fused multi-witness split rounds, with ``batch_size``
    witnesses per round (see :class:`Rothko`).

    Examples
    --------
    >>> from repro.graphs.generators import karate_club
    >>> result = q_color(karate_club(), n_colors=6)
    >>> result.n_colors
    6
    """
    if n_colors is None and q is None:
        raise ValueError("q_color needs n_colors and/or q")
    if n_colors is not None and n_colors < 1:
        raise ValueError(f"n_colors must be positive, got {n_colors}")
    if q is not None and q < 0:
        raise ValueError(f"q must be non-negative, got {q}")
    engine = Rothko(
        graph,
        initial=initial,
        alpha=alpha,
        beta=beta,
        split_mean=split_mean,
        frozen=frozen,
        strategy=strategy,
        batch_size=batch_size,
        backend=backend,
        workers=workers,
    )
    return engine.run(
        max_colors=n_colors,
        q_tolerance=q if q is not None else 0.0,
        max_iterations=max_iterations,
    )


def eps_color(
    graph,
    n_colors: int | None = None,
    eps: float | None = None,
    alpha: float = 0.0,
    beta: float = 0.0,
    initial: Coloring | None = None,
    frozen: Iterable[int] = (),
    max_iterations: int | None = None,
    strategy: str = "greedy",
    batch_size: int | None = None,
    backend=None,
    workers: int | None = None,
) -> RothkoResult:
    """Compute an eps-relative quasi-stable coloring (Sec. 3.1).

    The relative analogue of :func:`q_color`: two same-colored nodes may
    differ in block weight by at most a factor ``e^eps``; nodes with zero
    weight toward a color are separated from nodes with nonzero weight
    (zero is similar only to itself).  ``result.max_q_err`` holds the
    achieved *relative* error, i.e. the smallest valid ``eps``.
    """
    if n_colors is None and eps is None:
        raise ValueError("eps_color needs n_colors and/or eps")
    if n_colors is not None and n_colors < 1:
        raise ValueError(f"n_colors must be positive, got {n_colors}")
    if eps is not None and eps < 0:
        raise ValueError(f"eps must be non-negative, got {eps}")
    engine = Rothko(
        graph,
        initial=initial,
        alpha=alpha,
        beta=beta,
        frozen=frozen,
        error_mode="relative",
        strategy=strategy,
        batch_size=batch_size,
        backend=backend,
        workers=workers,
    )
    return engine.run(
        max_colors=n_colors,
        q_tolerance=eps if eps is not None else 0.0,
        max_iterations=max_iterations,
    )
