"""The Rothko algorithm (Sec. 5.2, Algorithm 1).

Rothko computes a quasi-stable coloring heuristically: starting from the
coarsest partition it repeatedly

1. builds the degree spread ("error") matrices ``U - L`` in both
   directions,
2. picks the *witness* — the color pair (and direction) with the largest
   size-weighted error ``Err ⊙ C``, where ``C[i, j] = |P_i|^alpha
   |P_j|^beta``,
3. splits the witnessing color at the arithmetic (or shifted geometric)
   mean of its members' degrees toward the other color,

until the requested number of colors is reached or the maximum q-error
drops below the tolerance.  The algorithm is *anytime*: `steps()` exposes
the loop as a generator so callers can consume intermediate colorings
(Table 6 measures exactly this responsiveness).

Implementation notes
--------------------
The engine maintains dense ``n x k`` degree matrices ``D_out`` / ``D_in``
incrementally: a split only invalidates the two affected columns, which are
rebuilt from CSC/CSR slices in ``O(nnz(affected columns))``.  The grouped
max/min per iteration uses ``np.{maximum,minimum}.reduceat`` over
color-sorted rows — ``O(n k)`` per iteration, all in vectorized numpy.

Weights may be negative (the LP reduction colors constraint matrices);
the geometric-mean split requires non-negative degrees and raises
otherwise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np
import scipy.sparse as sp

from repro.core.partition import Coloring
from repro.exceptions import ColoringError
from repro.utils.stats import log_mean_threshold

SPLIT_MEANS = ("arithmetic", "geometric")
ERROR_MODES = ("absolute", "relative")


def coerce_adjacency(graph) -> sp.csr_matrix:
    """Accept a WeightedDiGraph, networkx graph, or (sparse) matrix."""
    from repro.graphs.digraph import WeightedDiGraph

    if isinstance(graph, WeightedDiGraph):
        return graph.to_csr()
    if sp.issparse(graph):
        matrix = graph.tocsr().astype(np.float64)
    elif isinstance(graph, np.ndarray):
        matrix = sp.csr_matrix(graph, dtype=np.float64)
    else:
        # Duck-type networkx: it has `adj` and `nodes`.
        if hasattr(graph, "adj") and hasattr(graph, "nodes"):
            from repro.graphs.digraph import WeightedDiGraph as _G

            return _G.from_networkx(graph).to_csr()
        raise TypeError(f"cannot interpret {type(graph).__name__} as a graph")
    if matrix.shape[0] != matrix.shape[1]:
        raise ColoringError(f"adjacency must be square, got {matrix.shape}")
    return matrix


def _relative_spread(upper: np.ndarray, lower: np.ndarray) -> np.ndarray:
    """Per-block relative error ``log(max / min)`` with the Sec. 3.1 zero
    convention: blocks mixing zero and nonzero degrees get ``inf``."""
    spread = np.zeros_like(upper)
    mixed = (lower <= 0.0) & (upper > 0.0)
    positive = lower > 0.0
    spread[mixed] = np.inf
    spread[positive] = np.log(upper[positive] / lower[positive])
    return spread


def split_eject_mask(
    degrees: np.ndarray, split_mean: str, relative: bool = False
) -> np.ndarray:
    """Boolean mask of the members a split ejects into a fresh color.

    This is the threshold rule of Algorithm 1 lines 11-13, shared by the
    static :class:`Rothko` engine and the streaming
    :class:`repro.dynamic.DynamicColoring` repair loop.  ``degrees`` holds
    the witnessing block degrees of the color's members.  Raises
    :class:`ColoringError` when the degrees are constant (no proper split
    exists).
    """
    if relative and degrees.min() == 0.0 < degrees.max():
        # Zero is similar only to itself under the relative relation: the
        # only valid move is separating the zero-degree members.
        return degrees > 0.0
    if split_mean == "geometric" or relative:
        threshold = log_mean_threshold(degrees)
    else:
        threshold = float(degrees.mean())
    eject_mask = degrees > threshold
    if not eject_mask.any() or eject_mask.all():
        # Numerical edge case: fall back to a midpoint split, which is
        # proper whenever the degrees are not all equal.
        midpoint = (degrees.min() + degrees.max()) / 2.0
        eject_mask = degrees > midpoint
        if not eject_mask.any() or eject_mask.all():
            raise ColoringError(
                "witness has constant degrees; cannot split "
                "(q-error should have been 0)"
            )
    return eject_mask


def grouped_minmax_by_labels(
    values: np.ndarray, labels: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-label max/min of a row-per-node array (1-D or 2-D).

    The ``argsort`` + ``reduceat`` kernel shared by the static engine and
    :class:`repro.dynamic.DynamicColoring`.  Labels must be contiguous
    ``0..k-1`` with no empty classes (``reduceat`` over duplicated start
    offsets would silently read the wrong element otherwise).
    """
    order = np.argsort(labels, kind="stable")
    sizes = np.bincount(labels, minlength=k)
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    sorted_values = values[order]
    if values.ndim == 1:
        upper = np.maximum.reduceat(sorted_values, starts)
        lower = np.minimum.reduceat(sorted_values, starts)
    else:
        upper = np.maximum.reduceat(sorted_values, starts, axis=0)
        lower = np.minimum.reduceat(sorted_values, starts, axis=0)
    return upper, lower


@dataclass(frozen=True)
class RothkoStep:
    """Snapshot emitted after every split of the anytime loop."""

    iteration: int
    n_colors: int
    #: max unweighted q-error of the coloring *before* this split
    q_err_before: float
    #: (source_color, target_color, direction) that witnessed the split
    witness: tuple[int, int, str]
    #: coloring after the split
    coloring: Coloring
    #: seconds since the run started
    elapsed: float


@dataclass(frozen=True)
class RothkoResult:
    """Final output of :func:`q_color`."""

    coloring: Coloring
    max_q_err: float
    n_iterations: int
    elapsed: float

    @property
    def n_colors(self) -> int:
        return self.coloring.n_colors


class Rothko:
    """Incremental engine for Algorithm 1.

    Parameters
    ----------
    graph:
        Graph or square adjacency matrix.
    initial:
        Starting partition (default: the trivial one-color partition).
        Rothko only ever splits, so initial classes are never merged —
        this is how the LP and flow pipelines pin special nodes.
    alpha, beta:
        Witness weighting exponents (Algorithm 1 line 7).  The paper uses
        ``(0, 0)`` for max-flow, ``(1, 0)`` for LPs, ``(1, 1)`` for
        centrality.
    split_mean:
        ``"arithmetic"`` (default) or ``"geometric"`` — the split
        threshold (Sec. 5.2 recommends geometric for scale-free graphs
        with non-negative weights).
    frozen:
        Initial color ids that must never be split (e.g. source/sink).
    error_mode:
        ``"absolute"`` (default) targets the q-stable relation
        ``|u - v| <= q``; ``"relative"`` targets the eps-relative
        relation ``u e^-eps <= v <= u e^eps`` (Sec. 3.1).  In relative
        mode the per-pair error is ``log(max/min)`` of the block degrees
        (``inf`` when zero and nonzero degrees mix — zero is similar
        only to itself), weights must be non-negative, and the split
        threshold is always geometric.
    """

    def __init__(
        self,
        graph,
        initial: Coloring | None = None,
        alpha: float = 0.0,
        beta: float = 0.0,
        split_mean: str = "arithmetic",
        frozen: Iterable[int] = (),
        error_mode: str = "absolute",
    ) -> None:
        if split_mean not in SPLIT_MEANS:
            raise ValueError(
                f"split_mean must be one of {SPLIT_MEANS}, got {split_mean!r}"
            )
        if error_mode not in ERROR_MODES:
            raise ValueError(
                f"error_mode must be one of {ERROR_MODES}, got {error_mode!r}"
            )
        self._csr = coerce_adjacency(graph)
        self._csc = self._csr.tocsc()
        self.n = self._csr.shape[0]
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.split_mean = split_mean
        self.frozen = frozenset(frozen)
        self.error_mode = error_mode
        if error_mode == "relative":
            if self._csr.nnz and self._csr.data.min() < 0:
                raise ColoringError(
                    "relative error mode requires non-negative weights"
                )
            # Relative splits happen in log space regardless of the
            # requested mean (an arithmetic threshold is meaningless
            # across orders of magnitude).
            self.split_mean = "geometric"

        if initial is None:
            initial = Coloring.trivial(self.n)
        if initial.n != self.n:
            raise ColoringError(
                f"initial coloring has {initial.n} nodes, graph has {self.n}"
            )
        bad_frozen = [c for c in self.frozen if c >= initial.n_colors]
        if bad_frozen:
            raise ColoringError(f"frozen color ids out of range: {bad_frozen}")

        self.labels = initial.labels.copy()
        self.k = initial.n_colors
        self._members: list[np.ndarray] = [
            members.copy() for members in initial.classes()
        ]
        capacity = max(16, 2 * self.k)
        self._d_out = np.zeros((self.n, capacity), dtype=np.float64)
        self._d_in = np.zeros((self.n, capacity), dtype=np.float64)
        for color in range(self.k):
            self._refresh_color(color)

    # ------------------------------------------------------------------
    # incremental degree-matrix maintenance
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        capacity = self._d_out.shape[1]
        if self.k < capacity:
            return
        new_capacity = max(2 * capacity, self.k + 1)
        for name in ("_d_out", "_d_in"):
            old = getattr(self, name)
            grown = np.zeros((self.n, new_capacity), dtype=np.float64)
            grown[:, :capacity] = old
            setattr(self, name, grown)

    def _refresh_color(self, color: int) -> None:
        """Rebuild both degree columns for one color from the adjacency."""
        members = self._members[color]
        self._d_out[:, color] = np.asarray(
            self._csc[:, members].sum(axis=1)
        ).ravel()
        self._d_in[:, color] = np.asarray(
            self._csr[members, :].sum(axis=0)
        ).ravel()

    # ------------------------------------------------------------------
    # error matrices and witness selection
    # ------------------------------------------------------------------
    def _grouped_minmax(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return grouped_minmax_by_labels(values, self.labels, self.k)

    def error_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """Current ``(out_err, in_err)`` in (source, target) orientation.

        Absolute mode: ``U - L`` (the q-error spread of Algorithm 1).
        Relative mode: ``log(U / L)`` with ``inf`` where zero and nonzero
        degrees mix, so the smallest eps for which the block is
        ``~eps``-regular is exactly this matrix entry.
        """
        d_out = self._d_out[:, : self.k]
        d_in = self._d_in[:, : self.k]
        upper_out, lower_out = self._grouped_minmax(d_out)
        upper_in, lower_in = self._grouped_minmax(d_in)
        if self.error_mode == "absolute":
            return upper_out - lower_out, (upper_in - lower_in).T
        return (
            _relative_spread(upper_out, lower_out),
            _relative_spread(upper_in, lower_in).T,
        )

    def _find_witness(self) -> tuple[float, float, int, int, str]:
        """Return (max_raw_err, max_weighted_err, i, j, direction)."""
        out_err, in_err = self.error_matrices()
        raw_max = float(max(out_err.max(initial=0.0), in_err.max(initial=0.0)))

        sizes = np.array([len(m) for m in self._members[: self.k]], dtype=float)
        weight = np.power(sizes, self.alpha)[:, None] * np.power(sizes, self.beta)[
            None, :
        ]
        weighted_out = out_err * weight
        weighted_in = in_err * weight
        if self.frozen:
            frozen_ids = [c for c in self.frozen if c < self.k]
            # An out-witness splits the source color; an in-witness splits
            # the target color.  Mask frozen colors accordingly.
            weighted_out[frozen_ids, :] = -np.inf
            weighted_in[:, frozen_ids] = -np.inf

        flat_out = int(np.argmax(weighted_out))
        flat_in = int(np.argmax(weighted_in))
        best_out = weighted_out.flat[flat_out]
        best_in = weighted_in.flat[flat_in]
        if best_out >= best_in:
            i, j = divmod(flat_out, self.k)
            return raw_max, float(best_out), i, j, "out"
        i, j = divmod(flat_in, self.k)
        return raw_max, float(best_in), i, j, "in"

    # ------------------------------------------------------------------
    # splitting
    # ------------------------------------------------------------------
    def _split(self, i: int, j: int, direction: str) -> None:
        if direction == "out":
            split_color = i
            degrees = self._d_out[self._members[i], j]
        else:
            split_color = j
            degrees = self._d_in[self._members[j], i]
        members = self._members[split_color]
        eject_mask = split_eject_mask(
            degrees, self.split_mean, relative=self.error_mode == "relative"
        )
        retain = members[~eject_mask]
        eject = members[eject_mask]
        self._apply_split(split_color, retain, eject)

    def _apply_split(
        self, split_color: int, retain: np.ndarray, eject: np.ndarray
    ) -> None:
        self._grow()
        new_color = self.k
        self.k += 1
        self.labels[eject] = new_color
        self._members[split_color] = retain
        self._members.append(eject)
        self._refresh_color(split_color)
        self._refresh_color(new_color)

    # ------------------------------------------------------------------
    # the anytime loop
    # ------------------------------------------------------------------
    def coloring(self) -> Coloring:
        """Current partition as an immutable :class:`Coloring`."""
        return Coloring(self.labels)

    def steps(
        self,
        max_colors: int | None = None,
        q_tolerance: float = 0.0,
        max_iterations: int | None = None,
    ) -> Iterator[RothkoStep]:
        """Run Algorithm 1, yielding a snapshot after every split.

        Stops when ``max_colors`` is reached, the max q-error drops to
        ``q_tolerance``, no splittable witness remains, or
        ``max_iterations`` splits have been performed.
        """
        if max_colors is None and max_iterations is None and q_tolerance <= 0:
            # Without any bound the loop would refine to the discrete
            # partition, which is legal but rarely intended; allow it but
            # bound iterations by n for safety.
            max_iterations = self.n
        start = time.perf_counter()
        iteration = 0
        while True:
            if max_colors is not None and self.k >= max_colors:
                return
            if max_iterations is not None and iteration >= max_iterations:
                return
            raw_err, weighted_err, i, j, direction = self._find_witness()
            if raw_err <= q_tolerance:
                return
            if weighted_err <= 0 or np.isnan(weighted_err):
                # All remaining witnesses are frozen or weightless.  An
                # infinite witness (relative mode, mixed zero/nonzero
                # degrees) is valid and the split proceeds.
                return
            self._split(i, j, direction)
            iteration += 1
            yield RothkoStep(
                iteration=iteration,
                n_colors=self.k,
                q_err_before=raw_err,
                witness=(i, j, direction),
                coloring=self.coloring(),
                elapsed=time.perf_counter() - start,
            )

    def run(
        self,
        max_colors: int | None = None,
        q_tolerance: float = 0.0,
        max_iterations: int | None = None,
    ) -> RothkoResult:
        """Drive :meth:`steps` to completion and return the result."""
        start = time.perf_counter()
        iterations = 0
        for step in self.steps(
            max_colors=max_colors,
            q_tolerance=q_tolerance,
            max_iterations=max_iterations,
        ):
            iterations = step.iteration
        raw_err, _, _, _, _ = self._find_witness()
        return RothkoResult(
            coloring=self.coloring(),
            max_q_err=raw_err,
            n_iterations=iterations,
            elapsed=time.perf_counter() - start,
        )


def q_color(
    graph,
    n_colors: int | None = None,
    q: float | None = None,
    alpha: float = 0.0,
    beta: float = 0.0,
    split_mean: str = "arithmetic",
    initial: Coloring | None = None,
    frozen: Iterable[int] = (),
    max_iterations: int | None = None,
) -> RothkoResult:
    """Compute a quasi-stable coloring with the Rothko heuristic.

    Exactly one stopping knob is required: a color budget ``n_colors``
    and/or a target maximum q-error ``q``.

    Examples
    --------
    >>> from repro.graphs.generators import karate_club
    >>> result = q_color(karate_club(), n_colors=6)
    >>> result.n_colors
    6
    """
    if n_colors is None and q is None:
        raise ValueError("q_color needs n_colors and/or q")
    if n_colors is not None and n_colors < 1:
        raise ValueError(f"n_colors must be positive, got {n_colors}")
    if q is not None and q < 0:
        raise ValueError(f"q must be non-negative, got {q}")
    engine = Rothko(
        graph,
        initial=initial,
        alpha=alpha,
        beta=beta,
        split_mean=split_mean,
        frozen=frozen,
    )
    return engine.run(
        max_colors=n_colors,
        q_tolerance=q if q is not None else 0.0,
        max_iterations=max_iterations,
    )


def eps_color(
    graph,
    n_colors: int | None = None,
    eps: float | None = None,
    alpha: float = 0.0,
    beta: float = 0.0,
    initial: Coloring | None = None,
    frozen: Iterable[int] = (),
    max_iterations: int | None = None,
) -> RothkoResult:
    """Compute an eps-relative quasi-stable coloring (Sec. 3.1).

    The relative analogue of :func:`q_color`: two same-colored nodes may
    differ in block weight by at most a factor ``e^eps``; nodes with zero
    weight toward a color are separated from nodes with nonzero weight
    (zero is similar only to itself).  ``result.max_q_err`` holds the
    achieved *relative* error, i.e. the smallest valid ``eps``.
    """
    if n_colors is None and eps is None:
        raise ValueError("eps_color needs n_colors and/or eps")
    if n_colors is not None and n_colors < 1:
        raise ValueError(f"n_colors must be positive, got {n_colors}")
    if eps is not None and eps < 0:
        raise ValueError(f"eps must be non-negative, got {eps}")
    engine = Rothko(
        graph,
        initial=initial,
        alpha=alpha,
        beta=beta,
        frozen=frozen,
        error_mode="relative",
    )
    return engine.run(
        max_colors=n_colors,
        q_tolerance=eps if eps is not None else 0.0,
        max_iterations=max_iterations,
    )
