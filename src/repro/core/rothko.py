"""The Rothko algorithm (Sec. 5.2, Algorithm 1).

Rothko computes a quasi-stable coloring heuristically: starting from the
coarsest partition it repeatedly

1. builds the degree spread ("error") matrices ``U - L`` in both
   directions,
2. picks the *witness* — the color pair (and direction) with the largest
   size-weighted error ``Err ⊙ C``, where ``C[i, j] = |P_i|^alpha
   |P_j|^beta``,
3. splits the witnessing color at the arithmetic (or shifted geometric)
   mean of its members' degrees toward the other color,

until the requested number of colors is reached or the maximum q-error
drops below the tolerance.  The algorithm is *anytime*: `steps()` exposes
the loop as a generator so callers can consume intermediate colorings
(Table 6 measures exactly this responsiveness).

Implementation notes
--------------------
The engine maintains *all* of its per-iteration state incrementally:

* the dense ``n x k`` degree matrices ``D_out`` / ``D_in`` — a split
  only invalidates the two affected columns, rebuilt straight off the
  CSC/CSR index arrays in ``O(nnz(affected columns))``
  (:func:`repro.core.kernels.scatter_select_sums`, no sparse slicing);
* the ``k x k`` boundary matrices ``U`` / ``L``, the error matrices
  ``Err``, and the size-weighted witness scores ``Err ⊙ C`` — persistent
  across iterations.  A split of color ``c`` into ``(c, t)`` dirties
  exactly the *columns* ``{c, t}`` of ``U``/``L`` (every color's spread
  toward the two new blocks: one ``O(n)`` gather over the maintained
  member lists + ``reduceat``, no argsort) and the *row-groups*
  ``{c, t}`` (the two new blocks' spread toward every color:
  ``O((|c| + |t|) k)`` max/min over the member rows).  Frozen-color
  masking and relative-mode spreads are baked into the maintained
  weighted matrices, so witness selection is a pair of ``O(k^2)``
  argmax scans.

Per-split work is therefore ``O(n + m k + k^2)`` where ``m`` is the size
of the split color — down from the ``O(n k + n log n)`` full recompute of
the naive formulation, which is what lets the engine scale to large
budgets (``bench_rothko_scaling``).  :meth:`Rothko.verify_state` checks
the maintained state against a from-scratch recompute; the invariant test
suite drives it after every split.

``RothkoStep.coloring`` is materialized lazily: the engine records each
split's parent color, so any intermediate snapshot can be reconstructed
on demand by remapping descendants back onto their ancestors — callers
that never inspect snapshots (``run()``, Table 6 timing) pay nothing.

Weights may be negative (the LP reduction colors constraint matrices);
the geometric-mean split requires non-negative degrees and raises
otherwise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np
import scipy.sparse as sp

from repro.core.kernels import (
    color_degree_matrix_t,
    grouped_minmax_by_labels,
    grouped_minmax_by_members,
    relative_spread,
    scatter_select_sums,
)
from repro.core.partition import Coloring
from repro.exceptions import ColoringError
from repro.utils.stats import log_mean_threshold

SPLIT_MEANS = ("arithmetic", "geometric")
ERROR_MODES = ("absolute", "relative")


def coerce_adjacency(graph) -> sp.csr_matrix:
    """Accept a WeightedDiGraph, networkx graph, or (sparse) matrix."""
    from repro.graphs.digraph import WeightedDiGraph

    if isinstance(graph, WeightedDiGraph):
        return graph.to_csr()
    if sp.issparse(graph):
        matrix = graph.tocsr().astype(np.float64)
    elif isinstance(graph, np.ndarray):
        matrix = sp.csr_matrix(graph, dtype=np.float64)
    else:
        # Duck-type networkx: it has `adj` and `nodes`.
        if hasattr(graph, "adj") and hasattr(graph, "nodes"):
            from repro.graphs.digraph import WeightedDiGraph as _G

            return _G.from_networkx(graph).to_csr()
        raise TypeError(f"cannot interpret {type(graph).__name__} as a graph")
    if matrix.shape[0] != matrix.shape[1]:
        raise ColoringError(f"adjacency must be square, got {matrix.shape}")
    return matrix


def split_eject_mask(
    degrees: np.ndarray, split_mean: str, relative: bool = False
) -> np.ndarray:
    """Boolean mask of the members a split ejects into a fresh color.

    This is the threshold rule of Algorithm 1 lines 11-13, shared by the
    static :class:`Rothko` engine and the streaming
    :class:`repro.dynamic.DynamicColoring` repair loop.  ``degrees`` holds
    the witnessing block degrees of the color's members.  Raises
    :class:`ColoringError` when the degrees are constant (no proper split
    exists).
    """
    if relative and degrees.min() == 0.0 < degrees.max():
        # Zero is similar only to itself under the relative relation: the
        # only valid move is separating the zero-degree members.
        return degrees > 0.0
    if split_mean == "geometric" or relative:
        threshold = log_mean_threshold(degrees)
    else:
        threshold = float(degrees.mean())
    eject_mask = degrees > threshold
    if not eject_mask.any() or eject_mask.all():
        # Numerical edge case: fall back to a midpoint split, which is
        # proper whenever the degrees are not all equal.
        midpoint = (degrees.min() + degrees.max()) / 2.0
        eject_mask = degrees > midpoint
        if not eject_mask.any() or eject_mask.all():
            raise ColoringError(
                "witness has constant degrees; cannot split "
                "(q-error should have been 0)"
            )
    return eject_mask


class RothkoStep:
    """Snapshot emitted after every split of the anytime loop.

    The :attr:`coloring` is materialized lazily on first access (and
    cached): the engine's split history is a forest of parent pointers,
    so the labels at this step are recovered by mapping every color
    created later back onto its ancestor.  Snapshots therefore stay
    valid — and immutable — even after the loop has moved on, while
    callers that never look at them skip the ``O(n)`` copy entirely.
    The engine reference is dropped on first access; a snapshot that is
    retained but never read keeps the engine (and its dense matrices)
    alive — touch ``.coloring`` before shelving a step long-term.
    """

    __slots__ = (
        "iteration",
        "n_colors",
        "q_err_before",
        "witness",
        "parent_color",
        "elapsed",
        "_engine",
        "_coloring",
    )

    def __init__(
        self,
        *,
        iteration: int,
        n_colors: int,
        q_err_before: float,
        witness: tuple[int, int, str],
        parent_color: int,
        elapsed: float,
        engine: "Rothko",
    ) -> None:
        #: split counter (1-based)
        self.iteration = iteration
        #: number of colors after this split
        self.n_colors = n_colors
        #: max unweighted q-error of the coloring *before* this split
        self.q_err_before = q_err_before
        #: (source_color, target_color, direction) that witnessed the split
        self.witness = witness
        #: engine color id that was split (the new color's parent)
        self.parent_color = parent_color
        #: seconds since the run started
        self.elapsed = elapsed
        self._engine = engine
        self._coloring: Coloring | None = None

    @property
    def new_color(self) -> int:
        """Engine color id created by this split (always the highest)."""
        return self.n_colors - 1

    @property
    def coloring(self) -> Coloring:
        """Coloring after this split (lazily materialized, cached)."""
        if self._coloring is None:
            self._coloring = self._engine.coloring_at(self.n_colors)
            # Once materialized the engine reference is dead weight —
            # drop it so a retained snapshot does not pin the engine's
            # dense matrices and adjacency copies in memory.
            self._engine = None
        return self._coloring

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RothkoStep):
            return NotImplemented
        return (
            self.iteration == other.iteration
            and self.n_colors == other.n_colors
            and self.q_err_before == other.q_err_before
            and self.witness == other.witness
            and self.elapsed == other.elapsed
            and self.coloring == other.coloring
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.iteration,
                self.n_colors,
                self.q_err_before,
                self.witness,
                self.elapsed,
                self.coloring,
            )
        )

    def __repr__(self) -> str:
        return (
            f"RothkoStep(iteration={self.iteration}, "
            f"n_colors={self.n_colors}, q_err_before={self.q_err_before!r}, "
            f"witness={self.witness!r}, elapsed={self.elapsed!r})"
        )


@dataclass(frozen=True)
class RothkoResult:
    """Final output of :func:`q_color`."""

    coloring: Coloring
    max_q_err: float
    n_iterations: int
    elapsed: float

    @property
    def n_colors(self) -> int:
        return self.coloring.n_colors


class Rothko:
    """Incremental engine for Algorithm 1.

    Parameters
    ----------
    graph:
        Graph or square adjacency matrix.
    initial:
        Starting partition (default: the trivial one-color partition).
        Rothko only ever splits, so initial classes are never merged —
        this is how the LP and flow pipelines pin special nodes.
    alpha, beta:
        Witness weighting exponents (Algorithm 1 line 7).  The paper uses
        ``(0, 0)`` for max-flow, ``(1, 0)`` for LPs, ``(1, 1)`` for
        centrality.
    split_mean:
        ``"arithmetic"`` (default) or ``"geometric"`` — the split
        threshold (Sec. 5.2 recommends geometric for scale-free graphs
        with non-negative weights).
    frozen:
        Initial color ids that must never be split (e.g. source/sink).
    error_mode:
        ``"absolute"`` (default) targets the q-stable relation
        ``|u - v| <= q``; ``"relative"`` targets the eps-relative
        relation ``u e^-eps <= v <= u e^eps`` (Sec. 3.1).  In relative
        mode the per-pair error is ``log(max/min)`` of the block degrees
        (``inf`` when zero and nonzero degrees mix — zero is similar
        only to itself), weights must be non-negative, and the split
        threshold is always geometric.
    """

    def __init__(
        self,
        graph,
        initial: Coloring | None = None,
        alpha: float = 0.0,
        beta: float = 0.0,
        split_mean: str = "arithmetic",
        frozen: Iterable[int] = (),
        error_mode: str = "absolute",
    ) -> None:
        if split_mean not in SPLIT_MEANS:
            raise ValueError(
                f"split_mean must be one of {SPLIT_MEANS}, got {split_mean!r}"
            )
        if error_mode not in ERROR_MODES:
            raise ValueError(
                f"error_mode must be one of {ERROR_MODES}, got {error_mode!r}"
            )
        self._csr = coerce_adjacency(graph)
        self._csc = self._csr.tocsc()
        self.n = self._csr.shape[0]
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.split_mean = split_mean
        self.frozen = frozenset(frozen)
        self.error_mode = error_mode
        if error_mode == "relative":
            if self._csr.nnz and self._csr.data.min() < 0:
                raise ColoringError(
                    "relative error mode requires non-negative weights"
                )
            # Relative splits happen in log space regardless of the
            # requested mean (an arithmetic threshold is meaningless
            # across orders of magnitude).
            self.split_mean = "geometric"

        if initial is None:
            initial = Coloring.trivial(self.n)
        if initial.n != self.n:
            raise ColoringError(
                f"initial coloring has {initial.n} nodes, graph has {self.n}"
            )
        bad_frozen = [c for c in self.frozen if c >= initial.n_colors]
        if bad_frozen:
            raise ColoringError(f"frozen color ids out of range: {bad_frozen}")

        self.labels = initial.labels.copy()
        self.k = initial.n_colors
        self._members: list[np.ndarray] = [
            members.copy() for members in initial.classes()
        ]
        #: split history: parent color of each color (-1 for initial ones)
        self._parent: list[int] = [-1] * self.k
        self._frozen_ids = np.array(sorted(self.frozen), dtype=np.int64)
        self._init_state()

    # ------------------------------------------------------------------
    # incremental state: D, U/L, Err, weighted witness scores
    # ------------------------------------------------------------------
    def _init_state(self) -> None:
        """Build degree matrices and boundary/error/witness state once.

        The degree matrices are stored color-major (``capacity x n``) so
        the per-split column work — scatter refresh, difference against
        the parent column, boundary gather — runs over contiguous rows.
        """
        capacity = max(16, 2 * self.k)
        n, k = self.n, self.k
        self._d_out = np.zeros((capacity, n), dtype=np.float64)
        self._d_in = np.zeros((capacity, n), dtype=np.float64)
        self._sizes = np.zeros(capacity, dtype=np.int64)
        self._alpha_pow = np.ones(capacity, dtype=np.float64)
        self._beta_pow = np.ones(capacity, dtype=np.float64)
        # Boundary matrices in "natural" orientation: row = the node's
        # color group, column = the color the degree points at.
        self._u_out = np.zeros((capacity, capacity), dtype=np.float64)
        self._l_out = np.zeros((capacity, capacity), dtype=np.float64)
        self._u_in = np.zeros((capacity, capacity), dtype=np.float64)
        self._l_in = np.zeros((capacity, capacity), dtype=np.float64)
        # Error + weighted-witness matrices in (source, target)
        # orientation, the one `error_matrices()` exposes.
        self._err_out = np.zeros((capacity, capacity), dtype=np.float64)
        self._err_in = np.zeros((capacity, capacity), dtype=np.float64)
        self._w_out = np.zeros((capacity, capacity), dtype=np.float64)
        self._w_in = np.zeros((capacity, capacity), dtype=np.float64)
        if k == 0:
            return

        self._d_out[:k] = color_degree_matrix_t(
            self._csr.indptr, self._csr.indices, self._csr.data,
            self.labels, k,
        )
        self._d_in[:k] = color_degree_matrix_t(
            self._csc.indptr, self._csc.indices, self._csc.data,
            self.labels, k,
        )
        self._sizes[:k] = [m.size for m in self._members]
        sizes_f = self._sizes[:k].astype(np.float64)
        self._alpha_pow[:k] = np.power(sizes_f, self.alpha)
        self._beta_pow[:k] = np.power(sizes_f, self.beta)

        upper, lower = grouped_minmax_by_labels(
            self._d_out[:k].T, self.labels, k
        )
        self._u_out[:k, :k] = upper
        self._l_out[:k, :k] = lower
        upper, lower = grouped_minmax_by_labels(
            self._d_in[:k].T, self.labels, k
        )
        self._u_in[:k, :k] = upper
        self._l_in[:k, :k] = lower

        self._err_out[:k, :k] = self._spread(
            self._u_out[:k, :k], self._l_out[:k, :k]
        )
        self._err_in[:k, :k] = self._spread(
            self._u_in[:k, :k], self._l_in[:k, :k]
        ).T
        weight = self._alpha_pow[:k, None] * self._beta_pow[None, :k]
        self._w_out[:k, :k] = self._err_out[:k, :k] * weight
        self._w_in[:k, :k] = self._err_in[:k, :k] * weight
        self._mask_frozen_full()

    def _spread(self, upper: np.ndarray, lower: np.ndarray) -> np.ndarray:
        if self.error_mode == "absolute":
            return upper - lower
        return relative_spread(upper, lower)

    def _mask_frozen_full(self) -> None:
        """Bake the frozen-color mask into the witness score matrices.

        An out-witness splits the source color; an in-witness splits the
        target color.  Mask frozen colors accordingly.
        """
        if self._frozen_ids.size:
            self._w_out[self._frozen_ids, : self.k] = -np.inf
            self._w_in[: self.k, self._frozen_ids] = -np.inf

    def _grow(self) -> None:
        capacity = self._d_out.shape[0]
        if self.k < capacity:
            return
        new_capacity = max(2 * capacity, self.k + 1)
        for name in ("_d_out", "_d_in"):
            old = getattr(self, name)
            grown = np.zeros((new_capacity, self.n), dtype=np.float64)
            grown[:capacity] = old
            setattr(self, name, grown)
        for name in (
            "_u_out", "_l_out", "_u_in", "_l_in",
            "_err_out", "_err_in", "_w_out", "_w_in",
        ):
            old = getattr(self, name)
            grown = np.zeros((new_capacity, new_capacity), dtype=np.float64)
            grown[:capacity, :capacity] = old
            setattr(self, name, grown)
        for name, fill in (
            ("_sizes", 0), ("_alpha_pow", 1.0), ("_beta_pow", 1.0)
        ):
            old = getattr(self, name)
            grown = np.full(new_capacity, fill, dtype=old.dtype)
            grown[:capacity] = old
            setattr(self, name, grown)

    def _refresh_split_columns(
        self,
        split_color: int,
        new_color: int,
        retain: np.ndarray,
        eject: np.ndarray,
    ) -> None:
        """Refresh both dirtied degree columns with a single scatter pass.

        The pre-split column of ``split_color`` covered retain ∪ eject,
        so only the smaller shard needs the ``O(nnz(shard))`` scatter
        kernel; the sibling column is the difference against the old
        column.  Geometric-threshold runs (which includes all of relative
        mode) scatter both shards instead: the difference can leave
        ``~1e-15`` residues — possibly *negative* — where an exact zero
        is required, which would crash ``log_mean_threshold`` and flip
        the relative spread's categorical zero/nonzero classification.
        Direct sums of the non-negative weights are exactly zero iff
        every term is.
        """
        if self.split_mean == "geometric":
            for color, shard in ((split_color, retain), (new_color, eject)):
                for d, compressed in (
                    (self._d_out, self._csc), (self._d_in, self._csr)
                ):
                    d[color] = scatter_select_sums(
                        compressed.indptr, compressed.indices,
                        compressed.data, shard, self.n,
                    )
            return
        if eject.size <= retain.size:
            shard_color, shard, sibling = new_color, eject, split_color
        else:
            shard_color, shard, sibling = split_color, retain, new_color
        for d, compressed in (
            (self._d_out, self._csc), (self._d_in, self._csr)
        ):
            old = d[split_color].copy()
            d[shard_color] = scatter_select_sums(
                compressed.indptr, compressed.indices, compressed.data,
                shard, self.n,
            )
            np.subtract(old, d[shard_color], out=d[sibling])

    def _update_boundary_columns(self, touched: tuple[int, int]) -> None:
        """Recompute U/L columns for the dirtied colors over all groups.

        ``O(n)``: the member lists double as a color-sorted node order,
        so no argsort is needed; both directions go through one fused
        gather + ``reduceat`` pass.
        """
        k = self.k
        c, t = touched
        fused = np.empty((4, self.n), dtype=np.float64)
        fused[0] = self._d_out[c]
        fused[1] = self._d_out[t]
        fused[2] = self._d_in[c]
        fused[3] = self._d_in[t]
        upper, lower = grouped_minmax_by_members(fused, self._members)
        cols = [c, t]
        self._u_out[:k, cols] = upper[:2].T
        self._l_out[:k, cols] = lower[:2].T
        self._u_in[:k, cols] = upper[2:].T
        self._l_in[:k, cols] = lower[2:].T

    def _update_boundary_rowgroups(self, touched: tuple[int, int]) -> None:
        """Recompute U/L rows for the dirtied groups over all colors.

        ``O(m k)`` where ``m`` is the split color's size.
        """
        k = self.k
        for group in touched:
            members = self._members[group]
            block = self._d_out[:k, members]
            self._u_out[group, :k] = block.max(axis=1)
            self._l_out[group, :k] = block.min(axis=1)
            block = self._d_in[:k, members]
            self._u_in[group, :k] = block.max(axis=1)
            self._l_in[group, :k] = block.min(axis=1)

    def _update_errors(self, touched: tuple[int, int]) -> None:
        """Refresh the dirtied rows/columns of Err and the witness scores.

        ``_err_out``/``_err_in`` live in (source, target) orientation; the
        boundary matrices group by the *node's* color, so for the
        in-direction a dirty row-group lands in an Err column and vice
        versa.
        """
        k = self.k
        for g in touched:
            self._err_out[g, :k] = self._spread(
                self._u_out[g, :k], self._l_out[g, :k]
            )
            self._err_out[:k, g] = self._spread(
                self._u_out[:k, g], self._l_out[:k, g]
            )
            self._err_in[g, :k] = self._spread(
                self._u_in[:k, g], self._l_in[:k, g]
            )
            self._err_in[:k, g] = self._spread(
                self._u_in[g, :k], self._l_in[g, :k]
            )
        alpha_pow = self._alpha_pow[:k]
        beta_pow = self._beta_pow[:k]
        frozen = self._frozen_ids
        for g in touched:
            self._w_out[g, :k] = self._err_out[g, :k] * (
                alpha_pow[g] * beta_pow
            )
            self._w_out[:k, g] = self._err_out[:k, g] * (
                alpha_pow * beta_pow[g]
            )
            self._w_in[g, :k] = self._err_in[g, :k] * (
                alpha_pow[g] * beta_pow
            )
            self._w_in[:k, g] = self._err_in[:k, g] * (
                alpha_pow * beta_pow[g]
            )
            if frozen.size:
                # Writes above clobbered masked entries in the touched
                # rows/columns; re-apply (split colors are never frozen,
                # so whole-row/column masks cannot be hit here).
                self._w_out[frozen, g] = -np.inf
                self._w_in[g, frozen] = -np.inf

    # ------------------------------------------------------------------
    # error matrices and witness selection
    # ------------------------------------------------------------------
    def error_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """Current ``(out_err, in_err)`` in (source, target) orientation.

        Absolute mode: ``U - L`` (the q-error spread of Algorithm 1).
        Relative mode: ``log(U / L)`` with ``inf`` where zero and nonzero
        degrees mix, so the smallest eps for which the block is
        ``~eps``-regular is exactly this matrix entry.

        Served from the maintained state in ``O(k^2)`` (copies are
        returned; mutating them does not disturb the engine).
        """
        k = self.k
        return self._err_out[:k, :k].copy(), self._err_in[:k, :k].copy()

    def _find_witness(self) -> tuple[float, float, int, int, str]:
        """Return (max_raw_err, max_weighted_err, i, j, direction).

        Pure ``O(k^2)`` argmax scans over the maintained matrices — no
        degree-matrix sweep, no argsort.
        """
        k = self.k
        if k == 0:
            return 0.0, 0.0, 0, 0, "out"
        err_out = self._err_out[:k, :k]
        err_in = self._err_in[:k, :k]
        raw_max = float(max(err_out.max(initial=0.0), err_in.max(initial=0.0)))

        weighted_out = self._w_out[:k, :k]
        weighted_in = self._w_in[:k, :k]
        flat_out = int(np.argmax(weighted_out))
        flat_in = int(np.argmax(weighted_in))
        best_out = weighted_out.flat[flat_out]
        best_in = weighted_in.flat[flat_in]
        if best_out >= best_in:
            i, j = divmod(flat_out, k)
            return raw_max, float(best_out), i, j, "out"
        i, j = divmod(flat_in, k)
        return raw_max, float(best_in), i, j, "in"

    # ------------------------------------------------------------------
    # splitting
    # ------------------------------------------------------------------
    def _split(self, i: int, j: int, direction: str) -> int:
        if direction == "out":
            split_color = i
            degrees = self._d_out[j, self._members[i]]
        else:
            split_color = j
            degrees = self._d_in[i, self._members[j]]
        members = self._members[split_color]
        eject_mask = split_eject_mask(
            degrees, self.split_mean, relative=self.error_mode == "relative"
        )
        retain = members[~eject_mask]
        eject = members[eject_mask]
        self._apply_split(split_color, retain, eject)
        return split_color

    def _apply_split(
        self, split_color: int, retain: np.ndarray, eject: np.ndarray
    ) -> None:
        self._grow()
        new_color = self.k
        self.k += 1
        self.labels[eject] = new_color
        self._members[split_color] = retain
        self._members.append(eject)
        self._parent.append(split_color)
        for color, members in ((split_color, retain), (new_color, eject)):
            self._sizes[color] = members.size
            size_f = np.float64(members.size)
            self._alpha_pow[color] = np.power(size_f, self.alpha)
            self._beta_pow[color] = np.power(size_f, self.beta)
        self._refresh_split_columns(split_color, new_color, retain, eject)
        touched = (split_color, new_color)
        self._update_boundary_columns(touched)
        self._update_boundary_rowgroups(touched)
        self._update_errors(touched)

    # ------------------------------------------------------------------
    # the anytime loop
    # ------------------------------------------------------------------
    def coloring(self) -> Coloring:
        """Current partition as an immutable :class:`Coloring`."""
        return Coloring(self.labels)

    def members(self, color: int) -> np.ndarray:
        """Current member indices of an engine color (do not mutate).

        Engine color ids are *not* canonical :class:`Coloring` ids: new
        colors are appended in split order, while ``coloring()``
        renumbers by first occurrence.  Callers tracking engine state
        (e.g. the pipeline's block-weight tracker) work in engine-id
        space and translate at the boundary.
        """
        if not 0 <= color < self.k:
            raise ColoringError(f"color {color} out of range [0, {self.k})")
        return self._members[color]

    def max_q_err(self) -> float:
        """Max unweighted q-error of the current coloring.

        Served from the maintained error matrices in ``O(k^2)`` — no
        degree-matrix rebuild.  Equals ``RothkoResult.max_q_err`` of a
        fresh run stopped at this state.
        """
        return self._find_witness()[0]

    def coloring_at(self, n_colors: int) -> Coloring:
        """Reconstruct the coloring as of the split that reached
        ``n_colors`` colors, by replaying the parent pointers backwards."""
        if n_colors >= self.k:
            return self.coloring()
        remap = np.arange(self.k, dtype=np.int64)
        for color in range(n_colors, self.k):
            # parent < color, so remap[parent] is already resolved to an
            # ancestor that existed at the requested step.
            remap[color] = remap[self._parent[color]]
        return Coloring(remap[self.labels])

    def steps(
        self,
        max_colors: int | None = None,
        q_tolerance: float = 0.0,
        max_iterations: int | None = None,
    ) -> Iterator[RothkoStep]:
        """Run Algorithm 1, yielding a snapshot after every split.

        Stops when ``max_colors`` is reached, the max q-error drops to
        ``q_tolerance``, no splittable witness remains, or
        ``max_iterations`` splits have been performed.
        """
        if max_colors is None and max_iterations is None and q_tolerance <= 0:
            # Without any bound the loop would refine to the discrete
            # partition, which is legal but rarely intended; allow it but
            # bound iterations by n for safety.
            max_iterations = self.n
        start = time.perf_counter()
        iteration = 0
        while True:
            if max_colors is not None and self.k >= max_colors:
                return
            if max_iterations is not None and iteration >= max_iterations:
                return
            raw_err, weighted_err, i, j, direction = self._find_witness()
            if raw_err <= q_tolerance:
                return
            if weighted_err <= 0 or np.isnan(weighted_err):
                # All remaining witnesses are frozen or weightless.  An
                # infinite witness (relative mode, mixed zero/nonzero
                # degrees) is valid and the split proceeds.
                return
            parent_color = self._split(i, j, direction)
            iteration += 1
            yield RothkoStep(
                iteration=iteration,
                n_colors=self.k,
                q_err_before=raw_err,
                witness=(i, j, direction),
                parent_color=parent_color,
                elapsed=time.perf_counter() - start,
                engine=self,
            )

    def run(
        self,
        max_colors: int | None = None,
        q_tolerance: float = 0.0,
        max_iterations: int | None = None,
    ) -> RothkoResult:
        """Drive :meth:`steps` to completion and return the result."""
        start = time.perf_counter()
        iterations = 0
        for step in self.steps(
            max_colors=max_colors,
            q_tolerance=q_tolerance,
            max_iterations=max_iterations,
        ):
            iterations = step.iteration
        raw_err, _, _, _, _ = self._find_witness()
        return RothkoResult(
            coloring=self.coloring(),
            max_q_err=raw_err,
            n_iterations=iterations,
            elapsed=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def verify_state(self, atol: float = 1e-8, rtol: float = 1e-9) -> None:
        """Check every piece of maintained state against a from-scratch
        recompute; raises :class:`ColoringError` on divergence.

        The invariant test suite calls this after every split — it is the
        executable definition of what the incremental updates maintain.
        """
        n, k = self.n, self.k
        if sorted(np.unique(self.labels).tolist()) != list(range(k)):
            raise ColoringError("color ids are not contiguous")
        for color, members in enumerate(self._members):
            if not np.array_equal(
                np.sort(members), np.flatnonzero(self.labels == color)
            ):
                raise ColoringError(f"member list of color {color} is stale")
        if not np.array_equal(
            self._sizes[:k], [m.size for m in self._members]
        ):
            raise ColoringError("maintained sizes are stale")
        d_out = color_degree_matrix_t(
            self._csr.indptr, self._csr.indices, self._csr.data,
            self.labels, k,
        )
        d_in = color_degree_matrix_t(
            self._csc.indptr, self._csc.indices, self._csc.data,
            self.labels, k,
        )
        checks = [("D_out", self._d_out[:k], d_out),
                  ("D_in", self._d_in[:k], d_in)]
        u_out, l_out = grouped_minmax_by_labels(d_out.T, self.labels, k)
        u_in, l_in = grouped_minmax_by_labels(d_in.T, self.labels, k)
        checks += [
            ("U_out", self._u_out[:k, :k], u_out),
            ("L_out", self._l_out[:k, :k], l_out),
            ("U_in", self._u_in[:k, :k], u_in),
            ("L_in", self._l_in[:k, :k], l_in),
            ("Err_out", self._err_out[:k, :k], self._spread(u_out, l_out)),
            ("Err_in", self._err_in[:k, :k], self._spread(u_in, l_in).T),
        ]
        weight = self._alpha_pow[:k, None] * self._beta_pow[None, :k]
        w_out = self._spread(u_out, l_out) * weight
        w_in = self._spread(u_in, l_in).T * weight
        if self._frozen_ids.size:
            w_out[self._frozen_ids, :] = -np.inf
            w_in[:, self._frozen_ids] = -np.inf
        checks += [
            ("weighted_out", self._w_out[:k, :k], w_out),
            ("weighted_in", self._w_in[:k, :k], w_in),
        ]
        for name, maintained, scratch in checks:
            # The sibling-column subtraction leaves residues proportional
            # to the weight magnitude on exact-zero entries, where rtol
            # contributes nothing — scale atol by the matrix magnitude.
            finite = scratch[np.isfinite(scratch)]
            scale = (
                max(1.0, float(np.abs(finite).max())) if finite.size else 1.0
            )
            if not np.allclose(
                maintained, scratch, atol=atol * scale, rtol=rtol,
                equal_nan=True,
            ):
                raise ColoringError(
                    f"maintained {name} diverged from scratch recompute"
                )


def q_color(
    graph,
    n_colors: int | None = None,
    q: float | None = None,
    alpha: float = 0.0,
    beta: float = 0.0,
    split_mean: str = "arithmetic",
    initial: Coloring | None = None,
    frozen: Iterable[int] = (),
    max_iterations: int | None = None,
) -> RothkoResult:
    """Compute a quasi-stable coloring with the Rothko heuristic.

    Exactly one stopping knob is required: a color budget ``n_colors``
    and/or a target maximum q-error ``q``.

    Examples
    --------
    >>> from repro.graphs.generators import karate_club
    >>> result = q_color(karate_club(), n_colors=6)
    >>> result.n_colors
    6
    """
    if n_colors is None and q is None:
        raise ValueError("q_color needs n_colors and/or q")
    if n_colors is not None and n_colors < 1:
        raise ValueError(f"n_colors must be positive, got {n_colors}")
    if q is not None and q < 0:
        raise ValueError(f"q must be non-negative, got {q}")
    engine = Rothko(
        graph,
        initial=initial,
        alpha=alpha,
        beta=beta,
        split_mean=split_mean,
        frozen=frozen,
    )
    return engine.run(
        max_colors=n_colors,
        q_tolerance=q if q is not None else 0.0,
        max_iterations=max_iterations,
    )


def eps_color(
    graph,
    n_colors: int | None = None,
    eps: float | None = None,
    alpha: float = 0.0,
    beta: float = 0.0,
    initial: Coloring | None = None,
    frozen: Iterable[int] = (),
    max_iterations: int | None = None,
) -> RothkoResult:
    """Compute an eps-relative quasi-stable coloring (Sec. 3.1).

    The relative analogue of :func:`q_color`: two same-colored nodes may
    differ in block weight by at most a factor ``e^eps``; nodes with zero
    weight toward a color are separated from nodes with nonzero weight
    (zero is similar only to itself).  ``result.max_q_err`` holds the
    achieved *relative* error, i.e. the smallest valid ``eps``.
    """
    if n_colors is None and eps is None:
        raise ValueError("eps_color needs n_colors and/or eps")
    if n_colors is not None and n_colors < 1:
        raise ValueError(f"n_colors must be positive, got {n_colors}")
    if eps is not None and eps < 0:
        raise ValueError(f"eps must be non-negative, got {eps}")
    engine = Rothko(
        graph,
        initial=initial,
        alpha=alpha,
        beta=beta,
        frozen=frozen,
        error_mode="relative",
    )
    return engine.run(
        max_colors=n_colors,
        q_tolerance=eps if eps is not None else 0.0,
        max_iterations=max_iterations,
    )
