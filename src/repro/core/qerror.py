"""Degree/error matrices for quasi-stable colorings (Sec. 5.2).

Given an adjacency matrix ``A`` and a coloring with indicator ``S``:

* ``D_out = A @ S``   — ``D_out[v, j] = w(v, P_j)``, node ``v``'s total
  outgoing weight into color ``j``;
* ``D_in  = A.T @ S`` — ``D_in[v, i] = w(P_i, v)``, total incoming weight
  from color ``i``.

Grouping rows by the node's color and taking max/min per column yields the
``U`` and ``L`` matrices of Algorithm 1 and the error matrix
``Err = U - L``.  We track both directions (Definition 1 constrains
outgoing *and* incoming weights):

* ``out_err[i, j]`` — spread of ``w(x, P_j)`` over ``x in P_i``
  (a witness here splits the *source* color ``P_i``);
* ``in_err[i, j]``  — spread of ``w(P_i, y)`` over ``y in P_j``
  (a witness here splits the *target* color ``P_j``).

On symmetric adjacency (undirected graphs) ``in_err = out_err.T``.

The heavy lifting is shared with the Rothko engine via
:mod:`repro.core.kernels`: the degree matrices are one ``O(m)`` bincount
each, and the metric functions accept precomputed matrices so a full
report builds them exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core import kernels
from repro.core.partition import Coloring

def _as_csr(adjacency: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    return kernels.as_csr_square(adjacency)


def color_degree_matrices(
    adjacency: sp.spmatrix | np.ndarray, coloring: Coloring
) -> tuple[np.ndarray, np.ndarray]:
    """Return dense ``(D_out, D_in)``, each ``n x k``."""
    matrix = _as_csr(adjacency)
    return kernels.color_degree_matrices(
        matrix, coloring.labels, coloring.n_colors
    )


def grouped_minmax(
    values: np.ndarray, coloring: Coloring
) -> tuple[np.ndarray, np.ndarray]:
    """Per-color column-wise max and min of a row-per-node matrix.

    ``U[i, j] = max_{v in P_i} values[v, j]`` and symmetrically for ``L``.
    Delegates to the shared argsort + ``reduceat`` kernel
    (:func:`repro.core.kernels.grouped_minmax_by_labels`).
    """
    if values.shape[0] != coloring.n:
        raise ValueError(
            f"values has {values.shape[0]} rows but coloring has {coloring.n} nodes"
        )
    return kernels.grouped_minmax_by_labels(
        values, coloring.labels, coloring.n_colors
    )


def error_matrices(
    adjacency: sp.spmatrix | np.ndarray,
    coloring: Coloring,
    degree_matrices: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(out_err, in_err)``, both ``k x k`` (see module docstring).

    Pass ``degree_matrices=(D_out, D_in)`` to reuse matrices you already
    have (e.g. from :func:`color_degree_matrices`) instead of rebuilding
    them from the adjacency.
    """
    if degree_matrices is None:
        degree_matrices = color_degree_matrices(adjacency, coloring)
    d_out, d_in = degree_matrices
    upper_out, lower_out = grouped_minmax(d_out, coloring)
    upper_in, lower_in = grouped_minmax(d_in, coloring)
    out_err = upper_out - lower_out
    # grouped_minmax groups by the *node's* color: for D_in the node is the
    # target, so rows of (upper_in - lower_in) are target colors and columns
    # are source colors.  Transpose into (source, target) orientation.
    in_err = (upper_in - lower_in).T
    return out_err, in_err


def max_q_err(
    adjacency: sp.spmatrix | np.ndarray,
    coloring: Coloring,
    degree_matrices: tuple[np.ndarray, np.ndarray] | None = None,
    errors: tuple[np.ndarray, np.ndarray] | None = None,
) -> float:
    """The maximum q-error of the coloring over both directions.

    This is the smallest ``q`` for which the coloring is q-stable
    (Definition 1 with the ``~q`` relation).  ``errors`` accepts a
    precomputed :func:`error_matrices` pair to skip the reduction.
    """
    if errors is None:
        errors = error_matrices(
            adjacency, coloring, degree_matrices=degree_matrices
        )
    out_err, in_err = errors
    if out_err.size == 0:
        return 0.0
    return float(max(out_err.max(), in_err.max()))


def mean_q_err(
    adjacency: sp.spmatrix | np.ndarray,
    coloring: Coloring,
    degree_matrices: tuple[np.ndarray, np.ndarray] | None = None,
    errors: tuple[np.ndarray, np.ndarray] | None = None,
) -> float:
    """Average q-error over color pairs that have any adjacency.

    Table 4's "Mean q" statistic: the spread averaged over the ordered
    color pairs ``(i, j)`` with at least one edge from ``P_i`` to ``P_j``
    (pairs without edges are exactly regular and would dilute the metric).

    ``errors`` accepts a precomputed :func:`error_matrices` pair so
    callers that already reduced the degree matrices skip the second
    grouped min/max sweep.
    """
    if degree_matrices is None:
        degree_matrices = kernels.color_degree_matrices(
            _as_csr(adjacency), coloring.labels, coloring.n_colors
        )
    d_out, _ = degree_matrices
    # Block weight = column sums of D_out grouped by the node's color;
    # no extra sparse triple product needed.
    indicator = coloring.indicator()
    block_weight = np.asarray((indicator.T @ d_out))
    if errors is None:
        errors = error_matrices(
            adjacency, coloring, degree_matrices=degree_matrices
        )
    out_err, in_err = errors
    mask = block_weight != 0.0
    if not mask.any():
        return 0.0
    spread = np.maximum(out_err, in_err)
    return float(spread[mask].mean())


@dataclass(frozen=True)
class QErrorReport:
    """Summary statistics of a coloring's q-error (Table 4 row)."""

    n_colors: int
    max_q: float
    mean_q: float
    compression_ratio: float

    def as_row(self) -> dict:
        return {
            "colors": self.n_colors,
            "max_q": self.max_q,
            "mean_q": self.mean_q,
            "compression": f"{self.compression_ratio:.0f}:1"
            if self.compression_ratio >= 10
            else f"{self.compression_ratio:.2f}:1",
        }


def q_error_report(
    adjacency: sp.spmatrix | np.ndarray, coloring: Coloring
) -> QErrorReport:
    """Bundle the Table 4 statistics for one coloring.

    The degree matrices *and* the error matrices are each built exactly
    once and threaded through both metrics (they used to be rebuilt three
    times over).
    """
    matrix = _as_csr(adjacency)
    degree_matrices = kernels.color_degree_matrices(
        matrix, coloring.labels, coloring.n_colors
    )
    errors = error_matrices(
        matrix, coloring, degree_matrices=degree_matrices
    )
    return QErrorReport(
        n_colors=coloring.n_colors,
        max_q=max_q_err(matrix, coloring, errors=errors),
        mean_q=mean_q_err(
            matrix, coloring, degree_matrices=degree_matrices, errors=errors
        ),
        compression_ratio=coloring.compression_ratio(),
    )


def is_q_stable(
    adjacency: sp.spmatrix | np.ndarray, coloring: Coloring, q: float
) -> bool:
    """Whether the coloring is q-stable on the given graph."""
    return max_q_err(adjacency, coloring) <= q


def is_quasi_stable(
    adjacency: sp.spmatrix | np.ndarray,
    coloring: Coloring,
    similarity,
) -> bool:
    """Whether the coloring is ``~``quasi-stable for an arbitrary relation.

    Checks Definition 1 directly: for every ordered color pair, the
    outgoing row sums are pairwise similar and the incoming column sums are
    pairwise similar.  Quadratic in ``k``; intended for validation/tests.
    """
    d_out, d_in = color_degree_matrices(adjacency, coloring)
    for members in coloring.classes():
        for j in range(coloring.n_colors):
            if not similarity.all_similar(d_out[members, j]):
                return False
            if not similarity.all_similar(d_in[members, j]):
                return False
    return True
