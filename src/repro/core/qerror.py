"""Degree/error matrices for quasi-stable colorings (Sec. 5.2).

Given an adjacency matrix ``A`` and a coloring with indicator ``S``:

* ``D_out = A @ S``   — ``D_out[v, j] = w(v, P_j)``, node ``v``'s total
  outgoing weight into color ``j``;
* ``D_in  = A.T @ S`` — ``D_in[v, i] = w(P_i, v)``, total incoming weight
  from color ``i``.

Grouping rows by the node's color and taking max/min per column yields the
``U`` and ``L`` matrices of Algorithm 1 and the error matrix
``Err = U - L``.  We track both directions (Definition 1 constrains
outgoing *and* incoming weights):

* ``out_err[i, j]`` — spread of ``w(x, P_j)`` over ``x in P_i``
  (a witness here splits the *source* color ``P_i``);
* ``in_err[i, j]``  — spread of ``w(P_i, y)`` over ``y in P_j``
  (a witness here splits the *target* color ``P_j``).

On symmetric adjacency (undirected graphs) ``in_err = out_err.T``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.partition import Coloring


def _as_csr(adjacency: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    matrix = sp.csr_matrix(adjacency, dtype=np.float64)
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"adjacency must be square, got {matrix.shape}")
    return matrix


def color_degree_matrices(
    adjacency: sp.spmatrix | np.ndarray, coloring: Coloring
) -> tuple[np.ndarray, np.ndarray]:
    """Return dense ``(D_out, D_in)``, each ``n x k``."""
    matrix = _as_csr(adjacency)
    indicator = coloring.indicator()
    d_out = np.asarray((matrix @ indicator).todense())
    d_in = np.asarray((matrix.T @ indicator).todense())
    return d_out, d_in


def grouped_minmax(
    values: np.ndarray, coloring: Coloring
) -> tuple[np.ndarray, np.ndarray]:
    """Per-color column-wise max and min of a row-per-node matrix.

    ``U[i, j] = max_{v in P_i} values[v, j]`` and symmetrically for ``L``.
    Delegates to the shared argsort + ``reduceat`` kernel
    (:func:`repro.core.rothko.grouped_minmax_by_labels`).
    """
    from repro.core.rothko import grouped_minmax_by_labels

    if values.shape[0] != coloring.n:
        raise ValueError(
            f"values has {values.shape[0]} rows but coloring has {coloring.n} nodes"
        )
    return grouped_minmax_by_labels(values, coloring.labels, coloring.n_colors)


def error_matrices(
    adjacency: sp.spmatrix | np.ndarray, coloring: Coloring
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(out_err, in_err)``, both ``k x k`` (see module docstring)."""
    d_out, d_in = color_degree_matrices(adjacency, coloring)
    upper_out, lower_out = grouped_minmax(d_out, coloring)
    upper_in, lower_in = grouped_minmax(d_in, coloring)
    out_err = upper_out - lower_out
    # grouped_minmax groups by the *node's* color: for D_in the node is the
    # target, so rows of (upper_in - lower_in) are target colors and columns
    # are source colors.  Transpose into (source, target) orientation.
    in_err = (upper_in - lower_in).T
    return out_err, in_err


def max_q_err(
    adjacency: sp.spmatrix | np.ndarray, coloring: Coloring
) -> float:
    """The maximum q-error of the coloring over both directions.

    This is the smallest ``q`` for which the coloring is q-stable
    (Definition 1 with the ``~q`` relation).
    """
    out_err, in_err = error_matrices(adjacency, coloring)
    if out_err.size == 0:
        return 0.0
    return float(max(out_err.max(), in_err.max()))


def mean_q_err(
    adjacency: sp.spmatrix | np.ndarray, coloring: Coloring
) -> float:
    """Average q-error over color pairs that have any adjacency.

    Table 4's "Mean q" statistic: the spread averaged over the ordered
    color pairs ``(i, j)`` with at least one edge from ``P_i`` to ``P_j``
    (pairs without edges are exactly regular and would dilute the metric).
    """
    matrix = _as_csr(adjacency)
    indicator = coloring.indicator()
    block_weight = np.asarray((indicator.T @ matrix @ indicator).todense())
    out_err, in_err = error_matrices(adjacency, coloring)
    mask = block_weight != 0.0
    if not mask.any():
        return 0.0
    spread = np.maximum(out_err, in_err)
    return float(spread[mask].mean())


@dataclass(frozen=True)
class QErrorReport:
    """Summary statistics of a coloring's q-error (Table 4 row)."""

    n_colors: int
    max_q: float
    mean_q: float
    compression_ratio: float

    def as_row(self) -> dict:
        return {
            "colors": self.n_colors,
            "max_q": self.max_q,
            "mean_q": self.mean_q,
            "compression": f"{self.compression_ratio:.0f}:1"
            if self.compression_ratio >= 10
            else f"{self.compression_ratio:.2f}:1",
        }


def q_error_report(
    adjacency: sp.spmatrix | np.ndarray, coloring: Coloring
) -> QErrorReport:
    """Bundle the Table 4 statistics for one coloring."""
    return QErrorReport(
        n_colors=coloring.n_colors,
        max_q=max_q_err(adjacency, coloring),
        mean_q=mean_q_err(adjacency, coloring),
        compression_ratio=coloring.compression_ratio(),
    )


def is_q_stable(
    adjacency: sp.spmatrix | np.ndarray, coloring: Coloring, q: float
) -> bool:
    """Whether the coloring is q-stable on the given graph."""
    return max_q_err(adjacency, coloring) <= q


def is_quasi_stable(
    adjacency: sp.spmatrix | np.ndarray,
    coloring: Coloring,
    similarity,
) -> bool:
    """Whether the coloring is ``~``quasi-stable for an arbitrary relation.

    Checks Definition 1 directly: for every ordered color pair, the
    outgoing row sums are pairwise similar and the incoming column sums are
    pairwise similar.  Quadratic in ``k``; intended for validation/tests.
    """
    d_out, d_in = color_degree_matrices(adjacency, coloring)
    for members in coloring.classes():
        for j in range(coloring.n_colors):
            if not similarity.all_similar(d_out[members, j]):
                return False
            if not similarity.all_similar(d_in[members, j]):
                return False
    return True
