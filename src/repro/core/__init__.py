"""Core contribution: quasi-stable colorings and the Rothko algorithm."""

from repro.core.partition import Coloring
from repro.core.lattice import meet, join
from repro.core.qerror import (
    color_degree_matrices,
    error_matrices,
    max_q_err,
    mean_q_err,
    q_error_report,
)
from repro.core.refinement import stable_coloring, congruence_coloring
from repro.core.reduced import (
    lifting_matrices,
    reduced_adjacency,
    reduced_graph,
)
from repro.core.rothko import Rothko, RothkoStep, eps_color, q_color
from repro.core.similarity import (
    Bisimulation,
    CappedCongruence,
    Equality,
    EpsRelative,
    QAbsolute,
    Similarity,
)
from repro.core.wl import wl1_coloring, wl2_node_coloring, wl2_pair_coloring

__all__ = [
    "Coloring",
    "meet",
    "join",
    "color_degree_matrices",
    "error_matrices",
    "max_q_err",
    "mean_q_err",
    "q_error_report",
    "stable_coloring",
    "congruence_coloring",
    "lifting_matrices",
    "reduced_adjacency",
    "reduced_graph",
    "Rothko",
    "RothkoStep",
    "q_color",
    "eps_color",
    "Bisimulation",
    "CappedCongruence",
    "Equality",
    "EpsRelative",
    "QAbsolute",
    "Similarity",
    "wl1_coloring",
    "wl2_node_coloring",
    "wl2_pair_coloring",
]
