"""Colorings (partitions) of node sets ``0..n-1`` (Sec. 2).

A coloring is stored as a dense integer label array in canonical form:
color ids are ``0..k-1``, numbered by first occurrence.  Canonical form
makes equality, hashing-free comparison, and refinement checks cheap and
deterministic.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ColoringError


def canonicalize_labels(labels: np.ndarray) -> np.ndarray:
    """Relabel colors as ``0..k-1`` in order of first occurrence."""
    labels = np.asarray(labels)
    _, first_index, inverse = np.unique(
        labels, return_index=True, return_inverse=True
    )
    # np.unique orders classes by value; reorder them by first occurrence.
    order = np.argsort(np.argsort(first_index))
    return order[inverse].astype(np.int64)


def first_occurrence_values(labels: np.ndarray) -> np.ndarray:
    """Original label values in canonical (first occurrence) order.

    The inverse view of :func:`canonicalize_labels`:
    ``first_occurrence_values(labels)[c]`` is the value that canonical
    color ``c`` had in ``labels``.  Consumers that maintain state keyed
    by raw label values (the pipeline's block-weight tracker, the LP
    reduction's bipartite slicing) use it to realign with the canonical
    :class:`Coloring` ids.
    """
    labels = np.asarray(labels)
    values, first_index = np.unique(labels, return_index=True)
    return values[np.argsort(first_index)]


class Coloring:
    """A partition of ``{0, ..., n-1}`` into ``k`` color classes.

    Instances are immutable: mutating operations return new colorings.
    """

    __slots__ = ("labels", "_sizes", "_classes")

    def __init__(self, labels: Sequence[int] | np.ndarray) -> None:
        array = np.asarray(labels, dtype=np.int64)
        if array.ndim != 1:
            raise ColoringError(f"labels must be 1-D, got shape {array.shape}")
        self.labels = canonicalize_labels(array)
        self.labels.flags.writeable = False
        self._sizes: np.ndarray | None = None
        self._classes: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def trivial(cls, n: int) -> "Coloring":
        """The single-color partition ``{V}`` (Rothko's starting point)."""
        return cls(np.zeros(n, dtype=np.int64))

    @classmethod
    def discrete(cls, n: int) -> "Coloring":
        """The partition ``P_bot`` with every node in its own color."""
        return cls(np.arange(n, dtype=np.int64))

    @classmethod
    def from_classes(
        cls, classes: Iterable[Iterable[int]], n: int | None = None
    ) -> "Coloring":
        """Build from explicit classes; they must partition ``0..n-1``."""
        class_lists = [list(c) for c in classes]
        members = [i for c in class_lists for i in c]
        size = n if n is not None else (max(members) + 1 if members else 0)
        labels = np.full(size, -1, dtype=np.int64)
        for color, members_of_class in enumerate(class_lists):
            for node in members_of_class:
                if not 0 <= node < size:
                    raise ColoringError(f"node {node} out of range [0, {size})")
                if labels[node] != -1:
                    raise ColoringError(f"node {node} appears in two classes")
                labels[node] = color
        if np.any(labels == -1):
            missing = np.nonzero(labels == -1)[0][:5].tolist()
            raise ColoringError(f"nodes not covered by any class: {missing}...")
        return cls(labels)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self.labels.size)

    @property
    def n_colors(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0

    @property
    def sizes(self) -> np.ndarray:
        """Class sizes indexed by color id."""
        if self._sizes is None:
            self._sizes = np.bincount(self.labels, minlength=self.n_colors)
        return self._sizes

    def classes(self) -> list[np.ndarray]:
        """List of member-index arrays, indexed by color id."""
        if self._classes is None:
            order = np.argsort(self.labels, kind="stable")
            boundaries = np.flatnonzero(np.diff(self.labels[order])) + 1
            self._classes = np.split(order, boundaries)
        return self._classes

    def members(self, color: int) -> np.ndarray:
        if not 0 <= color < self.n_colors:
            raise ColoringError(f"color {color} out of range [0, {self.n_colors})")
        return self.classes()[color]

    def color_of(self, node: int) -> int:
        return int(self.labels[node])

    def compression_ratio(self) -> float:
        """``n / k``: how many original nodes one reduced node stands for."""
        if self.n_colors == 0:
            return 1.0
        return self.n / self.n_colors

    def indicator(self) -> sp.csr_matrix:
        """The ``n x k`` 0/1 color-membership matrix ``S``."""
        n, k = self.n, self.n_colors
        return sp.csr_matrix(
            (np.ones(n), (np.arange(n), self.labels)), shape=(n, k)
        )

    # ------------------------------------------------------------------
    # order structure
    # ------------------------------------------------------------------
    def refines(self, other: "Coloring") -> bool:
        """``self <= other`` in the refinement order: every class of
        ``self`` is contained in some class of ``other``."""
        if self.n != other.n:
            raise ColoringError(
                f"colorings on different node sets: {self.n} vs {other.n}"
            )
        # self refines other iff other's label is a function of self's label.
        seen: dict[int, int] = {}
        for mine, theirs in zip(self.labels.tolist(), other.labels.tolist()):
            if mine in seen:
                if seen[mine] != theirs:
                    return False
            else:
                seen[mine] = theirs
        return True

    def is_discrete(self) -> bool:
        return self.n_colors == self.n

    def is_trivial(self) -> bool:
        return self.n_colors <= 1

    # ------------------------------------------------------------------
    # manipulation
    # ------------------------------------------------------------------
    def split(self, color: int, eject: Sequence[int]) -> "Coloring":
        """Return a new coloring with ``eject`` moved out of ``color``.

        The ejected nodes receive a fresh color id.  This is the primitive
        operation Rothko performs (Algorithm 1, lines 11-13).
        """
        eject_array = np.asarray(list(eject), dtype=np.int64)
        if eject_array.size == 0:
            raise ColoringError("cannot split off an empty set")
        if np.any(self.labels[eject_array] != color):
            raise ColoringError(f"eject set is not contained in color {color}")
        if eject_array.size == self.sizes[color]:
            raise ColoringError(f"cannot eject all of color {color}")
        labels = self.labels.copy()
        labels[eject_array] = self.n_colors
        return Coloring(labels)

    def restrict(self, nodes: Sequence[int]) -> "Coloring":
        """Coloring induced on a subset of nodes (reindexed ``0..len-1``)."""
        index = np.asarray(list(nodes), dtype=np.int64)
        return Coloring(self.labels[index])

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Coloring):
            return NotImplemented
        return self.n == other.n and bool(np.array_equal(self.labels, other.labels))

    def __hash__(self) -> int:
        return hash(self.labels.tobytes())

    def __len__(self) -> int:
        return self.n_colors

    def __repr__(self) -> str:
        return f"<Coloring n={self.n} n_colors={self.n_colors}>"

    def validate(self) -> None:
        """Check internal invariants; raises :class:`ColoringError`."""
        if self.labels.size == 0:
            return
        if self.labels.min() < 0:
            raise ColoringError("negative color label")
        k = self.n_colors
        present = np.unique(self.labels)
        if present.size != k:
            raise ColoringError("color ids are not contiguous")
        if int(self.sizes.sum()) != self.n:
            raise ColoringError("class sizes do not sum to n")
