"""Shared vectorized kernels for degree-matrix maintenance.

The coloring engines (static :class:`~repro.core.rothko.Rothko`, streaming
:class:`~repro.dynamic.DynamicColoring`), the q-error metrics, the
block-weight tracker, and the arc-store solvers all reduce to the same
handful of primitives over CSR/CSC index arrays:

* :func:`scatter_add` — accumulate weighted contributions into a dense
  vector (one ``np.bincount``, no Python-level loop);
* :func:`take_ranges` — concatenate ``arange(start, start + count)``
  slices, the gather step for selecting a subset of CSR rows / CSC
  columns directly out of ``indptr``/``indices``/``data``;
* :func:`scatter_select_sums` — per-node total weight toward a *member
  subset* (one degree-matrix column) in ``O(nnz(members))``;
* :func:`scatter_select_color_sums` — per-*color* total weight of a
  member subset (one row or column of the block-weight matrix
  ``W = S^T A S``) in ``O(nnz(members))``;
* :func:`color_degree_slice` — the ``k x |rows|`` degree-matrix *slice*
  of a row subset, in ``O(nnz(rows) + k |rows|)``;
* :func:`select_degrees_toward` — per-selected-row total weight toward
  one target color (the split-threshold degree vector
  ``D[j, members(i)]``) in ``O(nnz(rows))``;
* :func:`color_degree_matrix` — the full dense ``n x k`` degree matrix in
  one ``O(m)`` bincount over flattened ``(node, color)`` keys;
* :func:`grouped_minmax_by_labels` — per-color max/min (the ``U``/``L``
  boundary matrices of Algorithm 1) via argsort + ``reduceat``;
* :func:`grouped_minmax_by_members` / :func:`members_order` /
  :func:`grouped_minmax_ordered` — the member-list variants that skip
  the argsort.

Since the backend-dispatch refactor, the hot kernels here are thin
fronts over the **process-default backend**
(:func:`repro.core.backends.default_backend` — numpy reference, numba,
or torch; resolution order ``REPRO_BACKEND`` env then auto-detect).
The reference implementations live in
:mod:`repro.core.backends.numpy_backend`; every other backend is held
to bit-identical results by the parity test sweep, so callers never
need to know which one is active.  Code that wants a *specific*
backend (e.g. a :class:`~repro.core.rothko.Rothko` instance built with
``backend=``) holds its own resolved instance and calls its methods
directly.

Everything operates on plain numpy arrays so the kernels compose with
both scipy sparse matrices and the dict-of-dicts mutable graph.

The bincount-shaped kernels report their scattered cell counts to the
``kernels.bincount_cells`` counter (:mod:`repro.obs`) — one counter add
per kernel call *here at the dispatch layer*, nothing per cell and
nothing inside the backend implementations, so chunked callers that
talk to a backend directly (the Rothko refresh loops) can accumulate
locally and emit a single count per logical kernel call.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.backends import default_backend
from repro.core.backends.numpy_backend import (
    grouped_minmax_by_labels as _np_grouped_minmax_by_labels,
)
from repro.obs import recorder as _obs

__all__ = [
    "as_csr_square",
    "scatter_add",
    "take_ranges",
    "scatter_select_sums",
    "scatter_select_color_sums",
    "color_degree_slice",
    "color_degree_slice_pair",
    "select_degrees_toward",
    "color_degree_matrix",
    "color_degree_matrix_t",
    "color_degree_matrices",
    "grouped_minmax_by_labels",
    "grouped_minmax_by_members",
    "members_order",
    "grouped_minmax_ordered",
    "relative_spread",
]


def as_csr_square(adjacency: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    """Coerce to a square float64 CSR matrix (shared input validation)."""
    matrix = sp.csr_matrix(adjacency, dtype=np.float64)
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"adjacency must be square, got {matrix.shape}")
    return matrix


def scatter_add(
    indices: np.ndarray, weights: np.ndarray, size: int
) -> np.ndarray:
    """Dense ``out[i] = sum of weights where indices == i`` (length
    ``size``), on the active backend."""
    return default_backend().scatter_add(indices, weights, size)


def take_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, start + count)`` for each pair."""
    return default_backend().take_ranges(starts, counts)


def scatter_select_sums(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    select: np.ndarray,
    size: int,
) -> np.ndarray:
    """Sum of the selected CSR rows (or CSC columns), scattered by index.

    For a CSC adjacency and ``select = members(P_j)`` this is exactly the
    degree-matrix column ``D_out[:, j] = w(v, P_j)``; on the CSR arrays it
    yields ``D_in[:, j] = w(P_j, v)``.  Runs in ``O(nnz(select))``.
    """
    _obs._active.count("kernels.bincount_cells", size)
    return default_backend().scatter_select_sums(
        indptr, indices, data, select, size
    )


def scatter_select_color_sums(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    select: np.ndarray,
    labels: np.ndarray,
    n_colors: int,
) -> np.ndarray:
    """Total weight of the selected CSR rows (CSC columns), per *color*.

    On the CSR arrays with ``select = members(P_i)`` this is one row of
    the block-weight matrix: ``W[i, j] = w(P_i, P_j)`` for every ``j``;
    the incremental block-weight tracker patches dirtied rows/columns
    with it in ``O(nnz(select))``.
    """
    return default_backend().scatter_select_color_sums(
        indptr, indices, data, select, labels, n_colors
    )


def color_degree_slice(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    rows: np.ndarray,
    labels: np.ndarray,
    n_colors: int,
) -> np.ndarray:
    """Dense ``k x |rows|`` degree slice of the selected CSR rows.

    Column ``r`` holds the total weight from ``rows[r]`` toward every
    color: on CSR arrays this is ``D_out[:, rows].T`` restricted to the
    selection, on CSC arrays ``D_in[:, rows].T``.  Entries are exactly
    zero iff every term is (no subtraction residues), which the
    geometric/relative split thresholds rely on.
    """
    rows = np.asarray(rows, dtype=np.int64)
    _obs._active.count("kernels.bincount_cells", n_colors * rows.size)
    return default_backend().color_degree_slice(
        indptr, indices, data, rows, labels, n_colors
    )


def color_degree_slice_pair(
    csr_arrays: tuple[np.ndarray, np.ndarray, np.ndarray],
    csc_arrays: tuple[np.ndarray, np.ndarray, np.ndarray],
    rows: np.ndarray,
    labels: np.ndarray,
    n_colors: int,
) -> np.ndarray:
    """Both directions' degree slices of a row subset in one pass.

    Returns ``(2, k, |rows|)``: layer 0 is the out slice (from the CSR
    arrays), layer 1 the in slice (from the CSC arrays).
    """
    rows = np.asarray(rows, dtype=np.int64)
    _obs._active.count("kernels.bincount_cells", 2 * n_colors * rows.size)
    return default_backend().color_degree_slice_pair(
        csr_arrays, csc_arrays, rows, labels, n_colors
    )


def select_degrees_toward(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    rows: np.ndarray,
    labels: np.ndarray,
    targets: int | np.ndarray,
) -> np.ndarray:
    """Per selected row, the total weight toward a target color.

    ``targets`` is either one color id (every row measured toward the
    same color) or an array of one target per row (fusing several
    selections into a single ``O(nnz(rows))`` pass).
    """
    return default_backend().select_degrees_toward(
        indptr, indices, data, rows, labels, targets
    )


def color_degree_matrix(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    labels: np.ndarray,
    n_colors: int,
) -> np.ndarray:
    """Dense ``n x k`` degree matrix from compressed-sparse arrays.

    On CSR arrays of ``A`` this is ``D_out[v, c] = w(v, P_c)``; on the CSC
    arrays (where the "row" ranges are columns of ``A``) it is
    ``D_in[v, c] = w(P_c, v)``.  One ``O(m)`` bincount over flattened
    ``(node, color)`` keys — considerably faster than ``A @ S`` with a
    sparse indicator followed by densification.
    """
    n = indptr.size - 1
    if n_colors == 0 or n == 0:
        return np.zeros((n, n_colors), dtype=np.float64)
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    flat = rows * n_colors + labels[indices]
    return default_backend().bincount(
        flat, data, n * n_colors
    ).reshape(n, n_colors)


def color_degree_matrix_t(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    labels: np.ndarray,
    n_colors: int,
) -> np.ndarray:
    """Transposed variant of :func:`color_degree_matrix`: dense ``k x n``.

    Color-major storage keeps each degree *column* contiguous, which is
    the access pattern of the incremental Rothko engine (splits refresh,
    gather, and difference whole columns).
    """
    n = indptr.size - 1
    if n_colors == 0 or n == 0:
        return np.zeros((n_colors, n), dtype=np.float64)
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    flat = labels[indices] * n + rows
    return default_backend().bincount(
        flat, data, n_colors * n
    ).reshape(n_colors, n)


def color_degree_matrices(
    matrix: sp.csr_matrix, labels: np.ndarray, n_colors: int
) -> tuple[np.ndarray, np.ndarray]:
    """Both dense degree matrices ``(D_out, D_in)`` of a CSR adjacency."""
    csc = matrix.tocsc()
    d_out = color_degree_matrix(
        matrix.indptr, matrix.indices, matrix.data, labels, n_colors
    )
    d_in = color_degree_matrix(
        csc.indptr, csc.indices, csc.data, labels, n_colors
    )
    return d_out, d_in


def grouped_minmax_by_labels(
    values: np.ndarray, labels: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-label max/min of a row-per-node array (1-D or 2-D).

    The ``argsort`` + ``reduceat`` kernel shared by the static engine and
    :class:`repro.dynamic.DynamicColoring`.  Labels must be contiguous
    ``0..k-1`` with no empty classes (``reduceat`` over duplicated start
    offsets would silently read the wrong element otherwise).
    """
    return default_backend().grouped_minmax_by_labels(values, labels, k)


def members_order(
    members: list[np.ndarray], sizes: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Color-sorted node order and ``reduceat`` starts of member lists.

    The concatenated member lists *are* a color-sorted node order, so
    per-color reductions need no argsort.  Build this once per refresh
    and feed it to :func:`grouped_minmax_ordered` for every value chunk.
    Member lists must be non-empty.  Callers that already maintain the
    per-color sizes (the Rothko engine) pass them via ``sizes`` to skip
    the per-list size scan.
    """
    if not members:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if sizes is None:
        sizes = np.array([m.size for m in members], dtype=np.int64)
    order = np.concatenate(members)
    starts = np.empty(len(members), dtype=np.int64)
    starts[0] = 0
    np.cumsum(sizes[:-1], out=starts[1:])
    return order, starts


def grouped_minmax_ordered(
    values: np.ndarray, order: np.ndarray, starts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-color max/min over the columns of a feature-major array, given
    a precomputed :func:`members_order` pair.  ``values`` is ``(r, n)``;
    the result pair is ``(r, k)`` — one ``O(r n)`` gather + reduction.
    """
    return default_backend().grouped_minmax_ordered(values, order, starts)


def grouped_minmax_by_members(
    values: np.ndarray, members: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Per-color max/min over the *columns* of a feature-major array.

    ``values`` is ``(r, n)`` — one row per tracked feature, one column
    per node (matching the color-major degree-matrix storage); the result
    pair is ``(r, k)``.  Skips the ``O(n log n)`` argsort of
    :func:`grouped_minmax_by_labels` via :func:`members_order`.  Member
    lists must be non-empty.
    """
    order, starts = members_order(members)
    return grouped_minmax_ordered(values, order, starts)


def relative_spread(upper: np.ndarray, lower: np.ndarray) -> np.ndarray:
    """Per-block relative error ``log(max / min)`` with the Sec. 3.1 zero
    convention: blocks mixing zero and nonzero degrees get ``inf``."""
    spread = np.zeros_like(upper)
    mixed = (lower <= 0.0) & (upper > 0.0)
    positive = lower > 0.0
    spread[mixed] = np.inf
    spread[positive] = np.log(upper[positive] / lower[positive])
    return spread


# re-exported for callers that need the reference implementation
# regardless of the active backend (verify paths, tests)
_reference_grouped_minmax_by_labels = _np_grouped_minmax_by_labels
