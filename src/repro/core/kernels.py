"""Shared vectorized kernels for degree-matrix maintenance.

The coloring engines (static :class:`~repro.core.rothko.Rothko`, streaming
:class:`~repro.dynamic.DynamicColoring`) and the q-error metrics all reduce
to the same handful of primitives over CSR/CSC index arrays:

* :func:`scatter_add` — accumulate weighted contributions into a dense
  vector (one ``np.bincount``, no Python-level loop);
* :func:`take_ranges` — concatenate ``arange(start, start + count)``
  slices, the gather step for selecting a subset of CSR rows / CSC
  columns directly out of ``indptr``/``indices``/``data``;
* :func:`scatter_select_sums` — per-node total weight toward a *member
  subset* (one degree-matrix column) in ``O(nnz(members))``;
* :func:`scatter_select_color_sums` — per-*color* total weight of a
  member subset (one row or column of the block-weight matrix
  ``W = S^T A S``) in ``O(nnz(members))``;
* :func:`color_degree_slice` — the ``k x |rows|`` degree-matrix *slice*
  of a row subset, in ``O(nnz(rows) + k |rows|)``: the memory-flat
  Rothko engine rebuilds exactly the slices a split touches instead of
  maintaining the full ``k x n`` matrices;
* :func:`select_degrees_toward` — per-selected-row total weight toward
  one target color (the split-threshold degree vector
  ``D[j, members(i)]``) in ``O(nnz(rows))``; batched split rounds pass
  a per-row target array to fuse many witnesses into one pass;
* :func:`color_degree_matrix` — the full dense ``n x k`` degree matrix in
  one ``O(m)`` bincount over flattened ``(node, color)`` keys;
* :func:`grouped_minmax_by_labels` — per-color max/min (the ``U``/``L``
  boundary matrices of Algorithm 1) via argsort + ``reduceat``;
* :func:`grouped_minmax_by_members` — the same reduction when the caller
  already maintains per-color member lists, skipping the argsort;
* :func:`members_order` / :func:`grouped_minmax_ordered` — the split of
  that kernel into its gather-order construction and its reduction, so
  batched refreshes build the color-sorted order once per round and
  reduce many value chunks against it.

Everything operates on plain numpy arrays so the kernels compose with
both scipy sparse matrices and the dict-of-dicts mutable graph.

The bincount-shaped kernels report their scattered cell counts to the
``kernels.bincount_cells`` counter (:mod:`repro.obs`) — one counter add
per kernel call, nothing per cell, so the chunk loops stay hot.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.obs import recorder as _obs

__all__ = [
    "as_csr_square",
    "scatter_add",
    "take_ranges",
    "scatter_select_sums",
    "scatter_select_color_sums",
    "color_degree_slice",
    "color_degree_slice_pair",
    "select_degrees_toward",
    "color_degree_matrix",
    "color_degree_matrix_t",
    "color_degree_matrices",
    "grouped_minmax_by_labels",
    "grouped_minmax_by_members",
    "members_order",
    "grouped_minmax_ordered",
    "relative_spread",
]


def as_csr_square(adjacency: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    """Coerce to a square float64 CSR matrix (shared input validation)."""
    matrix = sp.csr_matrix(adjacency, dtype=np.float64)
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"adjacency must be square, got {matrix.shape}")
    return matrix


def scatter_add(
    indices: np.ndarray, weights: np.ndarray, size: int
) -> np.ndarray:
    """Dense ``out[i] = sum of weights where indices == i`` (length ``size``).

    ``np.bincount`` compiles to a single C loop and beats both
    ``np.add.at`` and per-element Python accumulation by a wide margin.
    """
    if len(indices) == 0:
        return np.zeros(size, dtype=np.float64)
    return np.bincount(indices, weights=weights, minlength=size)


def take_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, start + count)`` for each pair.

    The standard cumsum trick: build a vector of ones, overwrite each
    range's first slot with the jump from the previous range's end, and
    integrate.  Empty ranges are dropped first so jump targets never
    collide.
    """
    counts = np.asarray(counts, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    nonempty = counts > 0
    starts = starts[nonempty]
    counts = counts[nonempty]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    result = np.ones(total, dtype=np.int64)
    ends = np.cumsum(counts)
    result[0] = starts[0]
    result[ends[:-1]] = starts[1:] - starts[:-1] - counts[:-1] + 1
    return np.cumsum(result)


def scatter_select_sums(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    select: np.ndarray,
    size: int,
) -> np.ndarray:
    """Sum of the selected CSR rows (or CSC columns), scattered by index.

    For a CSC adjacency and ``select = members(P_j)`` this is exactly the
    degree-matrix column ``D_out[:, j] = w(v, P_j)``; on the CSR arrays it
    yields ``D_in[:, j] = w(P_j, v)``.  Runs in ``O(nnz(select))`` — no
    fancy-indexed sparse slicing, no intermediate sparse matrix.
    """
    select = np.asarray(select, dtype=np.int64)
    starts = indptr[select]
    counts = indptr[select + 1] - starts
    positions = take_ranges(starts, counts)
    _obs._active.count("kernels.bincount_cells", size)
    return scatter_add(indices[positions], data[positions], size)


def scatter_select_color_sums(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    select: np.ndarray,
    labels: np.ndarray,
    n_colors: int,
) -> np.ndarray:
    """Total weight of the selected CSR rows (CSC columns), per *color*.

    On the CSR arrays with ``select = members(P_i)`` this is one row of
    the block-weight matrix: ``W[i, j] = w(P_i, P_j)`` for every ``j``;
    on the CSC arrays it yields the column ``W[:, i] = w(P_j, P_i)``.
    The incremental block-weight tracker of the pipeline runner uses it
    to patch the two rows/columns a Rothko split dirties in
    ``O(nnz(select))`` instead of recomputing the ``S^T A S`` triple
    product.
    """
    select = np.asarray(select, dtype=np.int64)
    starts = indptr[select]
    counts = indptr[select + 1] - starts
    positions = take_ranges(starts, counts)
    return scatter_add(labels[indices[positions]], data[positions], n_colors)


def color_degree_slice(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    rows: np.ndarray,
    labels: np.ndarray,
    n_colors: int,
) -> np.ndarray:
    """Dense ``k x |rows|`` degree slice of the selected CSR rows.

    Column ``r`` holds the total weight from ``rows[r]`` toward every
    color: on CSR arrays this is ``D_out[:, rows].T`` restricted to the
    selection, on CSC arrays ``D_in[:, rows].T``.  One
    ``O(nnz(rows) + k |rows|)`` bincount over flattened
    ``(color, local row)`` keys — the memory-flat engine's substitute for
    slicing a maintained dense degree matrix.  Rows absent from the
    selection's neighborhoods come out exactly zero (no subtraction
    residues), which the geometric/relative split thresholds rely on.
    """
    rows = np.asarray(rows, dtype=np.int64)
    r = rows.size
    if r == 0 or n_colors == 0:
        return np.zeros((n_colors, r), dtype=np.float64)
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    positions = take_ranges(starts, counts)
    local = np.repeat(np.arange(r, dtype=np.int64), counts)
    flat = labels[indices[positions]] * r + local
    _obs._active.count("kernels.bincount_cells", n_colors * r)
    return np.bincount(
        flat, weights=data[positions], minlength=n_colors * r
    ).reshape(n_colors, r)


def color_degree_slice_pair(
    csr_arrays: tuple[np.ndarray, np.ndarray, np.ndarray],
    csc_arrays: tuple[np.ndarray, np.ndarray, np.ndarray],
    rows: np.ndarray,
    labels: np.ndarray,
    n_colors: int,
) -> np.ndarray:
    """Both directions' degree slices of a row subset in one bincount.

    Returns ``(2, k, |rows|)``: layer 0 is the out slice (from the CSR
    arrays), layer 1 the in slice (from the CSC arrays).  The fused
    variant of two :func:`color_degree_slice` calls, used by the flat
    engine's row-group refresh.
    """
    rows = np.asarray(rows, dtype=np.int64)
    r = rows.size
    if r == 0 or n_colors == 0:
        return np.zeros((2, n_colors, r), dtype=np.float64)
    keys: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    for layer, (indptr, indices, data) in enumerate((csr_arrays, csc_arrays)):
        starts = indptr[rows]
        counts = indptr[rows + 1] - starts
        positions = take_ranges(starts, counts)
        local = np.repeat(np.arange(r, dtype=np.int64), counts)
        keys.append(
            (labels[indices[positions]] + layer * n_colors) * r + local
        )
        weights.append(data[positions])
    flat = np.concatenate(keys)
    if flat.size == 0:
        return np.zeros((2, n_colors, r), dtype=np.float64)
    _obs._active.count("kernels.bincount_cells", 2 * n_colors * r)
    return np.bincount(
        flat, weights=np.concatenate(weights), minlength=2 * n_colors * r
    ).reshape(2, n_colors, r)


def select_degrees_toward(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    rows: np.ndarray,
    labels: np.ndarray,
    targets: int | np.ndarray,
) -> np.ndarray:
    """Per selected row, the total weight toward a target color.

    ``targets`` is either one color id (every row measured toward the
    same color — the split's threshold degree vector
    ``D[j, members(i)]``, which the engine computes in edge-budget
    chunks of this kernel) or an array of one target per row (fusing
    several selections into a single ``O(nnz(rows))`` pass).  Sums are
    taken directly over the matching entries, so a row with no edges
    toward its target is exactly ``0.0``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    r = rows.size
    if r == 0:
        return np.zeros(0, dtype=np.float64)
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    positions = take_ranges(starts, counts)
    edge_colors = labels[indices[positions]]
    if np.ndim(targets) == 0:
        mask = edge_colors == int(targets)
    else:
        per_edge = np.repeat(np.asarray(targets, dtype=np.int64), counts)
        mask = edge_colors == per_edge
    local = np.repeat(np.arange(r, dtype=np.int64), counts)
    return np.bincount(local[mask], weights=data[positions][mask], minlength=r)


def color_degree_matrix(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    labels: np.ndarray,
    n_colors: int,
) -> np.ndarray:
    """Dense ``n x k`` degree matrix from compressed-sparse arrays.

    On CSR arrays of ``A`` this is ``D_out[v, c] = w(v, P_c)``; on the CSC
    arrays (where the "row" ranges are columns of ``A``) it is
    ``D_in[v, c] = w(P_c, v)``.  One ``O(m)`` bincount over flattened
    ``(node, color)`` keys — considerably faster than ``A @ S`` with a
    sparse indicator followed by densification.
    """
    n = indptr.size - 1
    if n_colors == 0 or n == 0:
        return np.zeros((n, n_colors), dtype=np.float64)
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    flat = rows * n_colors + labels[indices]
    return np.bincount(flat, weights=data, minlength=n * n_colors).reshape(
        n, n_colors
    )


def color_degree_matrix_t(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    labels: np.ndarray,
    n_colors: int,
) -> np.ndarray:
    """Transposed variant of :func:`color_degree_matrix`: dense ``k x n``.

    Color-major storage keeps each degree *column* contiguous, which is
    the access pattern of the incremental Rothko engine (splits refresh,
    gather, and difference whole columns).
    """
    n = indptr.size - 1
    if n_colors == 0 or n == 0:
        return np.zeros((n_colors, n), dtype=np.float64)
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    flat = labels[indices] * n + rows
    return np.bincount(flat, weights=data, minlength=n_colors * n).reshape(
        n_colors, n
    )


def color_degree_matrices(
    matrix: sp.csr_matrix, labels: np.ndarray, n_colors: int
) -> tuple[np.ndarray, np.ndarray]:
    """Both dense degree matrices ``(D_out, D_in)`` of a CSR adjacency."""
    csc = matrix.tocsc()
    d_out = color_degree_matrix(
        matrix.indptr, matrix.indices, matrix.data, labels, n_colors
    )
    d_in = color_degree_matrix(
        csc.indptr, csc.indices, csc.data, labels, n_colors
    )
    return d_out, d_in


def grouped_minmax_by_labels(
    values: np.ndarray, labels: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-label max/min of a row-per-node array (1-D or 2-D).

    The ``argsort`` + ``reduceat`` kernel shared by the static engine and
    :class:`repro.dynamic.DynamicColoring`.  Labels must be contiguous
    ``0..k-1`` with no empty classes (``reduceat`` over duplicated start
    offsets would silently read the wrong element otherwise).
    """
    if k == 0:
        shape = (0,) if values.ndim == 1 else (0, values.shape[1])
        return (
            np.empty(shape, dtype=values.dtype),
            np.empty(shape, dtype=values.dtype),
        )
    order = np.argsort(labels, kind="stable")
    sizes = np.bincount(labels, minlength=k)
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    sorted_values = values[order]
    if values.ndim == 1:
        upper = np.maximum.reduceat(sorted_values, starts)
        lower = np.minimum.reduceat(sorted_values, starts)
    else:
        upper = np.maximum.reduceat(sorted_values, starts, axis=0)
        lower = np.minimum.reduceat(sorted_values, starts, axis=0)
    return upper, lower


def members_order(
    members: list[np.ndarray], sizes: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Color-sorted node order and ``reduceat`` starts of member lists.

    The concatenated member lists *are* a color-sorted node order, so
    per-color reductions need no argsort.  Build this once per refresh
    and feed it to :func:`grouped_minmax_ordered` for every value chunk.
    Member lists must be non-empty.  Callers that already maintain the
    per-color sizes (the Rothko engine) pass them via ``sizes`` to skip
    the per-list size scan.
    """
    if not members:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if sizes is None:
        sizes = np.array([m.size for m in members], dtype=np.int64)
    order = np.concatenate(members)
    starts = np.empty(len(members), dtype=np.int64)
    starts[0] = 0
    np.cumsum(sizes[:-1], out=starts[1:])
    return order, starts


def grouped_minmax_ordered(
    values: np.ndarray, order: np.ndarray, starts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-color max/min over the columns of a feature-major array, given
    a precomputed :func:`members_order` pair.  ``values`` is ``(r, n)``;
    the result pair is ``(r, k)`` — one ``O(r n)`` gather + ``reduceat``.
    """
    if starts.size == 0:
        empty = np.empty((values.shape[0], 0), dtype=values.dtype)
        return empty, empty.copy()
    sorted_values = values[:, order]
    upper = np.maximum.reduceat(sorted_values, starts, axis=1)
    lower = np.minimum.reduceat(sorted_values, starts, axis=1)
    return upper, lower


def grouped_minmax_by_members(
    values: np.ndarray, members: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Per-color max/min over the *columns* of a feature-major array.

    ``values`` is ``(r, n)`` — one row per tracked feature, one column
    per node (matching the color-major degree-matrix storage); the result
    pair is ``(r, k)``.  Skips the ``O(n log n)`` argsort of
    :func:`grouped_minmax_by_labels` via :func:`members_order`.  Member
    lists must be non-empty.
    """
    order, starts = members_order(members)
    return grouped_minmax_ordered(values, order, starts)


def relative_spread(upper: np.ndarray, lower: np.ndarray) -> np.ndarray:
    """Per-block relative error ``log(max / min)`` with the Sec. 3.1 zero
    convention: blocks mixing zero and nonzero degrees get ``inf``."""
    spread = np.zeros_like(upper)
    mixed = (lower <= 0.0) & (upper > 0.0)
    positive = lower > 0.0
    spread[mixed] = np.inf
    spread[positive] = np.log(upper[positive] / lower[positive])
    return spread
