"""Slow, obviously-correct reference implementations for cross-checking.

Everything here is written with plain Python loops directly off the
definitions in the paper, with no incremental state.  The test suite runs
these against the vectorized engine (``rothko.py``, ``qerror.py``) on small
random graphs; any divergence is a bug in the fast path.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import Coloring


def block_weight_reference(
    dense: np.ndarray, left: np.ndarray, right: np.ndarray
) -> float:
    """``w(U, V)`` by direct summation (Eq. 1)."""
    total = 0.0
    for u in left:
        for v in right:
            total += dense[u, v]
    return total


def degree_reference(
    dense: np.ndarray, node: int, members: np.ndarray, direction: str
) -> float:
    """``w(node, P_j)`` or ``w(P_j, node)`` by direct summation."""
    if direction == "out":
        return float(sum(dense[node, v] for v in members))
    return float(sum(dense[v, node] for v in members))


def max_q_err_reference(dense: np.ndarray, coloring: Coloring) -> float:
    """Maximum q-error straight from Definition 1."""
    classes = coloring.classes()
    worst = 0.0
    for members_i in classes:
        for members_j in classes:
            out_degrees = [
                degree_reference(dense, int(x), members_j, "out")
                for x in members_i
            ]
            in_degrees = [
                degree_reference(dense, int(y), members_i, "in")
                for y in members_j
            ]
            if out_degrees:
                worst = max(worst, max(out_degrees) - min(out_degrees))
            if in_degrees:
                worst = max(worst, max(in_degrees) - min(in_degrees))
    return worst


def is_stable_reference(dense: np.ndarray, coloring: Coloring) -> bool:
    """Exact stability check (all block sums agree in both directions)."""
    return max_q_err_reference(dense, coloring) == 0.0


def rothko_step_reference(
    dense: np.ndarray,
    coloring: Coloring,
    alpha: float = 0.0,
    beta: float = 0.0,
) -> tuple[float, tuple[int, int, str]]:
    """One witness search straight off Algorithm 1 (arithmetic means).

    Returns ``(max_weighted_error, (i, j, direction))``; ties broken by
    scanning order (out-direction first, row-major), matching the fast
    engine's ``argmax`` order so the two can be compared on tie-free
    inputs.
    """
    classes = coloring.classes()
    k = len(classes)
    sizes = [len(c) for c in classes]
    best = (-1.0, (0, 0, "out"))
    for i in range(k):
        for j in range(k):
            weight = sizes[i] ** alpha * sizes[j] ** beta
            out_degrees = [
                degree_reference(dense, int(x), classes[j], "out")
                for x in classes[i]
            ]
            spread = (max(out_degrees) - min(out_degrees)) * weight
            if spread > best[0]:
                best = (spread, (i, j, "out"))
    for i in range(k):
        for j in range(k):
            weight = sizes[i] ** alpha * sizes[j] ** beta
            in_degrees = [
                degree_reference(dense, int(y), classes[i], "in")
                for y in classes[j]
            ]
            spread = (max(in_degrees) - min(in_degrees)) * weight
            if spread > best[0]:
                best = (spread, (i, j, "in"))
    return best
