"""Reduced graphs defined by a coloring (Sec. 3.2) and lifting matrices.

Given ``G = (X, w)`` with adjacency ``A`` and a coloring ``P`` with
indicator ``S``, the block-weight matrix is ``W = S^T A S``
(``W[i, j] = w(P_i, P_j)``).  The module offers the weight conventions the
paper uses:

* ``"sum"``        — ``W[i, j]`` itself (flow capacities ``c_hat_2``);
* ``"normalized"`` — ``W[i, j] / sqrt(|P_i| |P_j|)`` (Eq. 4, the LP
  reduction);
* ``"grohe"``      — ``W[i, j] / |P_j|`` (the reduction of Grohe et al.
  recovered in Sec. 4.1's discussion);
* ``"mean"``       — ``W[i, j] / (|P_i| |P_j|)`` (average edge weight).

``lifting_matrices`` returns the Eq. (10) pair ``U`` (k x n) and ``V``
(k x n) with ``U[r, i] = 1_{i in P_r} / sqrt(|P_r|)`` used by the proof of
Theorem 2 and by solution lifting.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.partition import Coloring
from repro.graphs.digraph import WeightedDiGraph

WEIGHT_MODES = ("sum", "normalized", "grohe", "mean")


def block_weights(
    adjacency: sp.spmatrix | np.ndarray, coloring: Coloring
) -> sp.csr_matrix:
    """``W = S^T A S`` with ``W[i, j] = w(P_i, P_j)`` (Eq. 1 aggregates)."""
    matrix = sp.csr_matrix(adjacency, dtype=np.float64)
    indicator = coloring.indicator()
    return (indicator.T @ matrix @ indicator).tocsr()


def reduced_adjacency(
    adjacency: sp.spmatrix | np.ndarray,
    coloring: Coloring,
    mode: str = "sum",
) -> sp.csr_matrix:
    """The ``k x k`` reduced adjacency under one of :data:`WEIGHT_MODES`."""
    if mode not in WEIGHT_MODES:
        raise ValueError(f"mode must be one of {WEIGHT_MODES}, got {mode!r}")
    weights = block_weights(adjacency, coloring)
    if mode == "sum":
        return weights
    sizes = coloring.sizes.astype(np.float64)
    if mode == "normalized":
        left = sp.diags(1.0 / np.sqrt(sizes))
        right = sp.diags(1.0 / np.sqrt(sizes))
        return (left @ weights @ right).tocsr()
    if mode == "grohe":
        right = sp.diags(1.0 / sizes)
        return (weights @ right).tocsr()
    # mode == "mean"
    left = sp.diags(1.0 / sizes)
    right = sp.diags(1.0 / sizes)
    return (left @ weights @ right).tocsr()


def reduced_graph(
    graph: WeightedDiGraph,
    coloring: Coloring,
    mode: str = "sum",
) -> WeightedDiGraph:
    """Reduced :class:`WeightedDiGraph` whose node labels are color ids."""
    matrix = reduced_adjacency(graph.to_csr(), coloring, mode=mode)
    return WeightedDiGraph.from_scipy(matrix, directed=True)


def lifting_matrices(
    coloring: Coloring,
) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Eq. (10)'s ``(U, V)``: here both are ``k x n`` with entries
    ``1_{i in P_r} / sqrt(|P_r|)`` — the fractional-isomorphism witnesses.

    The LP reduction uses ``U`` on rows and ``V`` on columns of the
    constraint matrix; for a single coloring they coincide.
    """
    indicator = coloring.indicator()  # n x k
    scale = sp.diags(1.0 / np.sqrt(coloring.sizes.astype(np.float64)))
    lifted = (scale @ indicator.T).tocsr()  # k x n
    return lifted, lifted.copy()


def averaging_matrix(coloring: Coloring) -> sp.csr_matrix:
    """The ``k x n`` row-stochastic averaging matrix ``M[r, i] =
    1_{i in P_r} / |P_r|`` (used to push node vectors to color space)."""
    indicator = coloring.indicator()
    scale = sp.diags(1.0 / coloring.sizes.astype(np.float64))
    return (scale @ indicator.T).tocsr()


def broadcast_matrix(coloring: Coloring) -> sp.csr_matrix:
    """The ``n x k`` 0/1 matrix that copies a color value to its members."""
    return coloring.indicator().tocsr()
