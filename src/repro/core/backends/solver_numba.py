"""Numba implementations of the solver kernel family.

Each kernel fuses the per-frontier / per-phase Python loops of the
numpy reference (:mod:`repro.core.backends.solver_numpy`) into one
compiled pass.  Determinism is load-bearing, not incidental:

* BFS levels are unique, so any traversal order matches the reference.
* The parent BFS visits frontier nodes in **ascending id order** and
  their arcs in adjacency order, assigning each node its first
  discovery arc and finishing the level in which the sink appears —
  exactly the first-occurrence rule of the reference's stable-sort
  dedupe, so Edmonds–Karp augments along identical paths.
* The blocking-flow DFS replays the reference's advance / fused
  augment-retreat / dead-end-kill decisions verbatim on arrays.
* Push-relabel emulates the reference's per-height LIFO bucket lists
  with ``bucket_head``/``bucket_next`` intrusive stacks (push-front /
  pop-front); a stack is a stack, so the pop sequence — and every
  push/relabel — is identical.
* The Brandes batch runs its sources sequentially (sigma counts are
  exact integers in float64; only the dependency sums re-associate,
  which the 1e-9 contract absorbs).

All kernels carry ``nogil=True`` so the round executor's thread-fanned
Brandes batches scale; ``cache=True`` persists the JIT artifacts across
processes.  The module always imports — :func:`available` gates use,
mirroring :mod:`repro.core.backends.numba_backend`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["available"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    _NUMBA_ERROR: Exception | None = None
except ImportError as exc:  # keep the module importable without numba
    njit = None
    _NUMBA_ERROR = exc

_EPS = 1e-12


def available() -> bool:
    """True when the numba toolchain imported cleanly."""
    return _NUMBA_ERROR is None


if available():  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True, nogil=True)
    def solve_bfs_levels(indptr, arcs, head, cap, n, source, sink):
        level = np.full(n, -1, dtype=np.int64)
        level[source] = 0
        frontier = np.empty(n, dtype=np.int64)
        nxt = np.empty(n, dtype=np.int64)
        frontier[0] = source
        f_count = 1
        depth = 0
        while f_count > 0:
            n_count = 0
            for i in range(f_count):
                u = frontier[i]
                for p in range(indptr[u], indptr[u + 1]):
                    a = arcs[p]
                    if cap[a] > _EPS:
                        v = head[a]
                        if level[v] < 0:
                            level[v] = depth + 1
                            nxt[n_count] = v
                            n_count += 1
            if n_count == 0:
                break
            depth += 1
            if sink >= 0 and level[sink] == depth:
                break
            frontier, nxt = nxt, frontier
            f_count = n_count
        return level

    @njit(cache=True, nogil=True)
    def solve_bfs_parents(indptr, arcs, head, tail, cap, n, source, sink):
        parent_arc = np.full(n, -1, dtype=np.int64)
        visited = np.zeros(n, dtype=np.bool_)
        visited[source] = True
        frontier = np.empty(n, dtype=np.int64)
        nxt = np.empty(n, dtype=np.int64)
        frontier[0] = source
        f_count = 1
        while f_count > 0:
            n_count = 0
            for i in range(f_count):
                u = frontier[i]
                for p in range(indptr[u], indptr[u + 1]):
                    a = arcs[p]
                    if cap[a] > _EPS:
                        v = head[a]
                        if not visited[v]:
                            visited[v] = True
                            parent_arc[v] = a
                            nxt[n_count] = v
                            n_count += 1
            if visited[sink]:
                return parent_arc
            # Ascending frontier keeps next level's discovery order
            # aligned with the reference's sorted-unique frontiers.
            nxt[:n_count] = np.sort(nxt[:n_count])
            frontier, nxt = nxt, frontier
            f_count = n_count
        return parent_arc

    @njit(cache=True, nogil=True)
    def solve_blocking_flow(local_indptr, heads, caps, source, sink):
        n = local_indptr.shape[0] - 1
        m = heads.shape[0]
        flows = np.zeros(m, dtype=np.float64)
        cursor = local_indptr[:n].copy()
        stack = np.empty(n + 1, dtype=np.int64)
        path = np.empty(n + 1, dtype=np.int64)
        total = 0.0
        stack[0] = source
        sp = 1
        pp = 0
        while sp > 0:
            u = stack[sp - 1]
            if u == sink:
                bottleneck = caps[path[0]]
                for i in range(1, pp):
                    c = caps[path[i]]
                    if c < bottleneck:
                        bottleneck = c
                total += bottleneck
                cut = -1
                for i in range(pp):
                    a = path[i]
                    remaining = caps[a] - bottleneck
                    caps[a] = remaining
                    flows[a] += bottleneck
                    if cut < 0 and remaining <= _EPS:
                        cut = i
                sp = cut + 1
                pp = cut
                continue
            position = cursor[u]
            end = local_indptr[u + 1]
            while position < end and caps[position] <= _EPS:
                position += 1
            cursor[u] = position
            if position < end:
                stack[sp] = heads[position]
                sp += 1
                path[pp] = position
                pp += 1
            else:
                sp -= 1
                if pp > 0:
                    pp -= 1
                    caps[path[pp]] = 0.0
        return total, flows

    @njit(cache=True, nogil=True)
    def solve_push_relabel(indptr, arcs, head, cap, n, source, sink):
        height = np.zeros(n, dtype=np.int64)
        excess = np.zeros(n, dtype=np.float64)
        count_at_height = np.zeros(2 * n + 1, dtype=np.int64)
        height[source] = n
        count_at_height[0] = n - 1
        count_at_height[n] += 1
        cursor = indptr[:n].copy()
        bucket_head = np.full(2 * n + 1, -1, dtype=np.int64)
        bucket_next = np.full(n, -1, dtype=np.int64)
        in_queue = np.zeros(n, dtype=np.bool_)
        highest = -1
        relabels = 0
        pushes = 0

        for position in range(indptr[source], indptr[source + 1]):
            a = arcs[position]
            delta = cap[a]
            if delta > _EPS:
                v = head[a]
                cap[a] = 0.0
                cap[a ^ 1] += delta
                excess[v] += delta
                if v != source and v != sink and not in_queue[v]:
                    in_queue[v] = True
                    hv = height[v]
                    bucket_next[v] = bucket_head[hv]
                    bucket_head[hv] = v
                    if hv > highest:
                        highest = hv

        while highest >= 0:
            u = bucket_head[highest]
            if u < 0:
                highest -= 1
                continue
            bucket_head[highest] = bucket_next[u]
            if height[u] != highest:
                # Stale entry (gap heuristic moved u): refile.
                hu = height[u]
                bucket_next[u] = bucket_head[hu]
                bucket_head[hu] = u
                if hu > highest:
                    highest = hu
                continue
            in_queue[u] = False
            while excess[u] > _EPS:
                position = cursor[u]
                if position == indptr[u + 1]:
                    relabels += 1
                    old_height = height[u]
                    min_height = 2 * n
                    for p in range(indptr[u], indptr[u + 1]):
                        a = arcs[p]
                        if cap[a] > _EPS:
                            h = height[head[a]]
                            if h < min_height:
                                min_height = h
                    if min_height >= 2 * n:
                        raise RuntimeError(
                            "relabel found no residual arc"
                        )
                    count_at_height[old_height] -= 1
                    height[u] = min_height + 1
                    count_at_height[min_height + 1] += 1
                    cursor[u] = indptr[u]
                    if count_at_height[old_height] == 0 and old_height < n:
                        for node in range(n):
                            hn = height[node]
                            if node != source and old_height < hn and hn <= n:
                                count_at_height[hn] -= 1
                                height[node] = n + 1
                                count_at_height[n + 1] += 1
                    continue
                a = arcs[position]
                v = head[a]
                if cap[a] > _EPS and height[u] == height[v] + 1:
                    delta = excess[u]
                    if cap[a] < delta:
                        delta = cap[a]
                    cap[a] -= delta
                    cap[a ^ 1] += delta
                    excess[u] -= delta
                    excess[v] += delta
                    pushes += 1
                    if v != source and v != sink and not in_queue[v]:
                        in_queue[v] = True
                        hv = height[v]
                        bucket_next[v] = bucket_head[hv]
                        bucket_head[hv] = v
                        if hv > highest:
                            highest = hv
                else:
                    cursor[u] = position + 1

        return excess[sink], relabels, pushes

    @njit(cache=True, nogil=True)
    def solve_edmonds_karp(indptr, arcs, head, tail, cap, n, source, sink):
        total = 0.0
        augmentations = 0
        path = np.empty(n, dtype=np.int64)
        while True:
            parent_arc = solve_bfs_parents(
                indptr, arcs, head, tail, cap, n, source, sink
            )
            if parent_arc[sink] < 0:
                break
            augmentations += 1
            plen = 0
            v = sink
            while v != source:
                a = parent_arc[v]
                path[plen] = a
                plen += 1
                v = tail[a]
            bottleneck = cap[path[0]]
            for i in range(1, plen):
                c = cap[path[i]]
                if c < bottleneck:
                    bottleneck = c
            for i in range(plen):
                a = path[i]
                cap[a] -= bottleneck
                cap[a ^ 1] += bottleneck
            total += bottleneck
        return total, augmentations

    @njit(cache=True, nogil=True)
    def solve_brandes_batch(indptr, indices, sources, weights, n):
        result = np.zeros(n, dtype=np.float64)
        dist = np.empty(n, dtype=np.int64)
        sigma = np.empty(n, dtype=np.float64)
        delta = np.empty(n, dtype=np.float64)
        order = np.empty(n, dtype=np.int64)
        for b in range(sources.shape[0]):
            s = sources[b]
            w_b = weights[b]
            for v in range(n):
                dist[v] = -1
                sigma[v] = 0.0
                delta[v] = 0.0
            dist[s] = 0
            sigma[s] = 1.0
            order[0] = s
            count = 1
            level_start = 0
            level_end = 1
            depth = 0
            while level_start < level_end:
                for i in range(level_start, level_end):
                    u = order[i]
                    su = sigma[u]
                    for p in range(indptr[u], indptr[u + 1]):
                        v = indices[p]
                        if dist[v] < 0:
                            dist[v] = depth + 1
                            sigma[v] = su
                            order[count] = v
                            count += 1
                        elif dist[v] == depth + 1:
                            sigma[v] += su
                level_start = level_end
                level_end = count
                depth += 1
            # Pred-free dependency pass: reverse discovery order
            # guarantees deeper nodes are final when read.
            for i in range(count - 1, 0, -1):
                u = order[i]
                du = dist[u]
                acc = 0.0
                for p in range(indptr[u], indptr[u + 1]):
                    w = indices[p]
                    if dist[w] == du + 1:
                        acc += sigma[u] / sigma[w] * (1.0 + delta[w])
                delta[u] = acc
                result[u] += w_b * acc
        return result
