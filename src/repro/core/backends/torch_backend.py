"""Torch backend: tensor kernels with ``device=`` passthrough.

CPU tensors wrap the engine's numpy arrays zero-copy
(``torch.from_numpy``), so the CPU path is a drop-in replacement whose
ATen ops release the GIL — thread-fanned batched rounds scale.  Passing
``device="cuda"`` (or ``"torch:cuda"`` through the registry string)
moves the per-call computation to the accelerator unchanged; arrays are
shipped per call, which already pays off on the large fused slices the
batched strategy produces.  (Keeping the CSR snapshot resident on the
device across calls is the follow-on optimization; the dispatch seams
here are where it lands.)

Determinism: on CPU, ``torch.bincount`` accumulates sequentially like
``np.bincount``, so results are bit-identical to the numpy reference —
the parity sweep enforces this.  On CUDA the scatter reductions use
atomics, so float sums may differ in the last ulp; CUDA parity is
therefore *approximate* (the sweep only runs the device it can).

Import failure degrades gracefully exactly like the numba backend.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.numpy_backend import NumpyBackend

__all__ = ["TorchBackend", "available"]

try:  # pragma: no cover - exercised only where torch is installed
    import torch

    _TORCH_ERROR: Exception | None = None
except ImportError as exc:  # keep the module importable without torch
    torch = None
    _TORCH_ERROR = exc


def available() -> bool:
    """True when the torch toolchain imported cleanly."""
    return _TORCH_ERROR is None


class TorchBackend(NumpyBackend):
    """Tensor backend (see module docstring)."""

    name = "torch"
    parallel_kernels = True

    def __init__(self, device: str = "cpu") -> None:
        if not available():
            raise ImportError(
                "the torch backend needs the 'torch' package "
                f"(import failed: {_TORCH_ERROR})"
            )
        self.device = str(torch.device(device))  # normalize + validate

    # -- tensor plumbing ------------------------------------------------
    def _tensor(self, array: np.ndarray, dtype=None) -> "torch.Tensor":
        """Wrap a numpy array; zero-copy on CPU, one transfer on CUDA."""
        tensor = torch.from_numpy(np.ascontiguousarray(array))
        if dtype is not None and tensor.dtype != dtype:
            tensor = tensor.to(dtype)
        if self.device != "cpu":
            tensor = tensor.to(self.device)
        return tensor

    def _numpy(self, tensor: "torch.Tensor") -> np.ndarray:
        if tensor.device.type != "cpu":
            tensor = tensor.cpu()
        return tensor.numpy()

    def _bincount(
        self, keys: "torch.Tensor", weights: "torch.Tensor", minlength: int
    ) -> np.ndarray:
        out = torch.bincount(keys, weights=weights, minlength=minlength)
        return self._numpy(out.to(torch.float64))

    # -- kernels --------------------------------------------------------
    def scatter_add(self, indices, weights, size):
        if len(indices) == 0:
            return np.zeros(size, dtype=np.float64)
        return self._bincount(
            self._tensor(np.asarray(indices), torch.int64),
            self._tensor(np.asarray(weights), torch.float64),
            size,
        )

    def bincount(self, keys, weights, minlength):
        if keys.size == 0:
            return np.zeros(minlength, dtype=np.float64)
        return self._bincount(
            self._tensor(keys, torch.int64),
            self._tensor(weights, torch.float64),
            minlength,
        )

    def scatter_select_sums(self, indptr, indices, data, select, size):
        select = np.asarray(select, dtype=np.int64)
        starts = indptr[select]
        counts = indptr[select + 1] - starts
        positions = self._tensor(
            NumpyBackend.take_ranges(starts, counts), torch.int64
        )
        keys = self._tensor(np.asarray(indices), torch.int64)[positions]
        weights = self._tensor(np.asarray(data), torch.float64)[positions]
        return self._bincount(keys, weights, size)

    def scatter_select_color_sums(
        self, indptr, indices, data, select, labels, n_colors
    ):
        select = np.asarray(select, dtype=np.int64)
        starts = indptr[select]
        counts = indptr[select + 1] - starts
        positions = self._tensor(
            NumpyBackend.take_ranges(starts, counts), torch.int64
        )
        labels_t = self._tensor(labels, torch.int64)
        keys = labels_t[self._tensor(np.asarray(indices), torch.int64)[positions]]
        weights = self._tensor(np.asarray(data), torch.float64)[positions]
        return self._bincount(keys, weights, n_colors)

    def _slice_keys(self, indptr, indices, rows, labels):
        """Gathered (edge colors, local row ids, positions) for a row
        subset — the shared front half of the slice kernels."""
        starts = indptr[rows]
        counts = indptr[rows + 1] - starts
        positions = self._tensor(
            NumpyBackend.take_ranges(starts, counts), torch.int64
        )
        local = self._tensor(
            np.repeat(np.arange(rows.size, dtype=np.int64), counts),
            torch.int64,
        )
        labels_t = self._tensor(labels, torch.int64)
        edge_colors = labels_t[
            self._tensor(np.asarray(indices), torch.int64)[positions]
        ]
        return edge_colors, local, positions

    def color_degree_slice(self, indptr, indices, data, rows, labels, n_colors):
        rows = np.asarray(rows, dtype=np.int64)
        r = rows.size
        if r == 0 or n_colors == 0:
            return np.zeros((n_colors, r), dtype=np.float64)
        edge_colors, local, positions = self._slice_keys(
            indptr, indices, rows, labels
        )
        weights = self._tensor(np.asarray(data), torch.float64)[positions]
        flat = edge_colors * r + local
        return self._bincount(flat, weights, n_colors * r).reshape(n_colors, r)

    def color_degree_slice_pair(
        self, csr_arrays, csc_arrays, rows, labels, n_colors
    ):
        rows = np.asarray(rows, dtype=np.int64)
        r = rows.size
        if r == 0 or n_colors == 0:
            return np.zeros((2, n_colors, r), dtype=np.float64)
        keys = []
        weights = []
        for layer, (indptr, indices, data) in enumerate(
            (csr_arrays, csc_arrays)
        ):
            edge_colors, local, positions = self._slice_keys(
                indptr, indices, rows, labels
            )
            keys.append((edge_colors + layer * n_colors) * r + local)
            weights.append(self._tensor(np.asarray(data), torch.float64)[positions])
        flat = torch.cat(keys)
        if flat.numel() == 0:
            return np.zeros((2, n_colors, r), dtype=np.float64)
        return self._bincount(
            flat, torch.cat(weights), 2 * n_colors * r
        ).reshape(2, n_colors, r)

    def select_degrees_toward(self, indptr, indices, data, rows, labels, targets):
        rows = np.asarray(rows, dtype=np.int64)
        r = rows.size
        if r == 0:
            return np.zeros(0, dtype=np.float64)
        starts = indptr[rows]
        counts = indptr[rows + 1] - starts
        edge_colors, local, positions = self._slice_keys(
            indptr, indices, rows, labels
        )
        if np.ndim(targets) == 0:
            mask = edge_colors == int(targets)
        else:
            per_edge = self._tensor(
                np.repeat(np.asarray(targets, dtype=np.int64), counts),
                torch.int64,
            )
            mask = edge_colors == per_edge
        weights = self._tensor(np.asarray(data), torch.float64)[positions]
        return self._bincount(local[mask], weights[mask], r)

    def grouped_minmax_ordered(self, values, order, starts):
        if starts.size == 0:
            empty = np.empty((values.shape[0], 0), dtype=values.dtype)
            return empty, empty.copy()
        r = values.shape[0]
        k = starts.size
        total = order.size
        # group id of each position in the color-sorted order
        group = np.zeros(total, dtype=np.int64)
        group[starts[1:]] = 1
        np.cumsum(group, out=group)
        index = self._tensor(group, torch.int64).unsqueeze(0).expand(r, total)
        gathered = self._tensor(values, torch.float64)[
            :, self._tensor(order, torch.int64)
        ]
        upper = torch.full(
            (r, k), -np.inf, dtype=torch.float64,
            device=gathered.device,
        ).scatter_reduce_(1, index, gathered, reduce="amax")
        lower = torch.full(
            (r, k), np.inf, dtype=torch.float64,
            device=gathered.device,
        ).scatter_reduce_(1, index, gathered, reduce="amin")
        return self._numpy(upper), self._numpy(lower)
