"""The :class:`Backend` protocol: the kernel surface a backend implements.

Every hot kernel the coloring engine and the pipeline touch per split is
listed here — nothing else is.  The contract mirrors the numpy
reference implementation in :mod:`repro.core.backends.numpy_backend`
exactly: plain ``numpy.ndarray`` in, plain ``numpy.ndarray`` out (C
layout, float64/int64), bit-identical results.  A backend is free to
run the computation anywhere (compiled CPU loops, a CUDA device) as
long as what crosses the boundary is a numpy array with the same
values; the parity test sweep (``tests/core/test_backends.py``) holds
every registered backend to that.

Backends carry two capability flags the engine's round executor reads:

``parallel_kernels``
    the fused kernels release the GIL (compiled code), so fanning
    color-disjoint witness work across *threads* scales;
``device``
    where the computation runs (``"cpu"`` or an accelerator string),
    recorded in spans and benchmark results.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["Backend", "KERNEL_NAMES", "SOLVER_KERNEL_NAMES"]

#: every method a Backend must provide (the parity sweep iterates this)
KERNEL_NAMES = (
    "scatter_add",
    "bincount",
    "take_ranges",
    "scatter_select_sums",
    "scatter_select_color_sums",
    "color_degree_slice",
    "color_degree_slice_pair",
    "select_degrees_toward",
    "grouped_minmax_by_labels",
    "grouped_minmax_ordered",
)

#: the solver kernel family the ArcStore tier dispatches through
#: (residual BFS, Dinic blocking flow, the fused flow solvers, and the
#: batched Brandes dependency pass) — semantics are defined by the
#: numpy reference in :mod:`repro.core.backends.solver_numpy`
SOLVER_KERNEL_NAMES = (
    "solve_bfs_levels",
    "solve_bfs_parents",
    "solve_blocking_flow",
    "solve_push_relabel",
    "solve_edmonds_karp",
    "solve_brandes_batch",
)


@runtime_checkable
class Backend(Protocol):
    """Kernel dispatch surface (see module docstring for the contract)."""

    #: registry name ("numpy", "numba", "torch")
    name: str
    #: True when the fused kernels release the GIL, making thread-fanned
    #: batched rounds profitable
    parallel_kernels: bool
    #: where kernels execute ("cpu", "cuda", "cuda:1", ...)
    device: str

    def scatter_add(
        self, indices: np.ndarray, weights: np.ndarray, size: int
    ) -> np.ndarray:
        """Dense ``out[i] = sum of weights where indices == i``."""

    def bincount(
        self, keys: np.ndarray, weights: np.ndarray, minlength: int
    ) -> np.ndarray:
        """Weighted bincount over precomputed flat keys (the fused
        scatter primitive the engine's split refresh builds on)."""

    def take_ranges(
        self, starts: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Concatenated ``arange(start, start + count)`` per pair."""

    def scatter_select_sums(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        select: np.ndarray,
        size: int,
    ) -> np.ndarray:
        """Sum of the selected CSR rows/CSC columns, scattered by index."""

    def scatter_select_color_sums(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        select: np.ndarray,
        labels: np.ndarray,
        n_colors: int,
    ) -> np.ndarray:
        """Total weight of the selected rows per *color* (one W row)."""

    def color_degree_slice(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        rows: np.ndarray,
        labels: np.ndarray,
        n_colors: int,
    ) -> np.ndarray:
        """Dense ``k x |rows|`` degree slice of the selected rows."""

    def color_degree_slice_pair(
        self,
        csr_arrays: tuple[np.ndarray, np.ndarray, np.ndarray],
        csc_arrays: tuple[np.ndarray, np.ndarray, np.ndarray],
        rows: np.ndarray,
        labels: np.ndarray,
        n_colors: int,
    ) -> np.ndarray:
        """Both directions' degree slices, ``(2, k, |rows|)``."""

    def select_degrees_toward(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        rows: np.ndarray,
        labels: np.ndarray,
        targets: int | np.ndarray,
    ) -> np.ndarray:
        """Per selected row, total weight toward a target color."""

    def grouped_minmax_by_labels(
        self, values: np.ndarray, labels: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-label max/min of a row-per-node array (1-D or 2-D)."""

    def grouped_minmax_ordered(
        self, values: np.ndarray, order: np.ndarray, starts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-color max/min over columns, given a members order."""

    # -- solver kernel family (SOLVER_KERNEL_NAMES) --------------------

    def solve_bfs_levels(
        self,
        indptr: np.ndarray,
        arcs: np.ndarray,
        head: np.ndarray,
        cap: np.ndarray,
        n: int,
        source: int,
        sink: int,
    ) -> np.ndarray:
        """Residual BFS levels (-1 unreached); ``sink < 0`` means full
        BFS, otherwise expansion stops after the sink's level."""

    def solve_bfs_parents(
        self,
        indptr: np.ndarray,
        arcs: np.ndarray,
        head: np.ndarray,
        tail: np.ndarray,
        cap: np.ndarray,
        n: int,
        source: int,
        sink: int,
    ) -> np.ndarray:
        """First-occurrence shortest-path discovery arcs; a negative
        entry at the sink signals unreachability."""

    def solve_blocking_flow(
        self,
        local_indptr: np.ndarray,
        heads: np.ndarray,
        caps: np.ndarray,
        source: int,
        sink: int,
    ) -> tuple[float, np.ndarray]:
        """One Dinic phase's blocking flow over a compacted level
        graph; consumes ``caps`` and returns ``(total, arc flows)``."""

    def solve_push_relabel(
        self,
        indptr: np.ndarray,
        arcs: np.ndarray,
        head: np.ndarray,
        cap: np.ndarray,
        n: int,
        source: int,
        sink: int,
    ) -> tuple[float, int, int]:
        """Fused highest-label push-relabel; mutates ``cap`` into the
        final residual and returns ``(value, relabels, pushes)``."""

    def solve_edmonds_karp(
        self,
        indptr: np.ndarray,
        arcs: np.ndarray,
        head: np.ndarray,
        tail: np.ndarray,
        cap: np.ndarray,
        n: int,
        source: int,
        sink: int,
    ) -> tuple[float, int]:
        """Fused shortest-augmenting-path loop; mutates ``cap`` and
        returns ``(value, augmentations)``."""

    def solve_brandes_batch(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        sources: np.ndarray,
        weights: np.ndarray,
        n: int,
    ) -> np.ndarray:
        """Weighted dependency-vector sum over a block of sources
        (equal to the reference within 1e-9; sums may re-associate)."""
