"""Multi-backend kernel dispatch for the flat-array engines.

The coloring engine, the q-error metrics, the block-weight tracker, and
the arc-store solvers all reduce to the small kernel surface defined by
:class:`~repro.core.backends.base.Backend`.  This package resolves
which implementation runs them:

* ``numpy`` — the always-available reference
  (:mod:`~repro.core.backends.numpy_backend`);
* ``numba`` — prange-threaded ``@njit(cache=True)`` fusions
  (:mod:`~repro.core.backends.numba_backend`), used automatically when
  importable;
* ``torch`` — tensor kernels with device passthrough
  (:mod:`~repro.core.backends.torch_backend`); name it as
  ``"torch:cuda"`` / ``"torch:cuda:1"`` to pick the device.

Resolution happens **once per run**: explicit argument
(``Rothko(backend=...)``, ``--backend`` on the CLI) beats the
``REPRO_BACKEND`` environment variable beats auto-detection
(numba if importable, else torch when it can see an accelerator, else
numpy).  Optional backends that fail to import degrade silently under
``auto`` and raise a clear :class:`ImportError` when named explicitly.
Ones that import but fail at *runtime* degrade too: numba/torch
instances are wrapped in
:class:`~repro.resilience.fallback.ResilientBackend`, so a kernel that
raises mid-run is demoted to the numpy reference (once, with a warning
and a ``resilience.fallback.*`` counter) instead of crashing the run.
Resolved instances are cached per ``(name, device)``, so repeated
resolution is an attribute lookup, and the resolved ``name`` is what
the observability spans, the coloring-cache key, and the benchmark
results JSON record.

:func:`parallel_round_executor` (in
:mod:`~repro.core.backends.executor`) pairs a resolved backend with the
right fan-out mode for batched split rounds: threads where the kernels
release the GIL, a shared-memory process pool for the numpy path.
"""

from __future__ import annotations

import os

from repro.core.backends.base import Backend, KERNEL_NAMES, SOLVER_KERNEL_NAMES
from repro.core.backends.executor import RoundExecutor, resolve_workers
from repro.core.backends.numpy_backend import NumpyBackend
from repro.core.backends import numba_backend as _numba
from repro.core.backends import torch_backend as _torch
from repro.resilience.fallback import ResilientBackend

__all__ = [
    "Backend",
    "KERNEL_NAMES",
    "SOLVER_KERNEL_NAMES",
    "RoundExecutor",
    "available_backends",
    "default_backend",
    "resolve_backend",
    "resolve_workers",
    "set_default_backend",
]

#: registered backend names, in auto-detection preference order
BACKEND_NAMES = ("numba", "torch", "numpy")

#: resolved instances, keyed by (name, device)
_INSTANCES: dict[tuple[str, str], Backend] = {}

#: the process-default backend (what the kernels-module wrappers use)
_DEFAULT: Backend | None = None


def available_backends() -> list[str]:
    """Names of the backends that can actually be instantiated here."""
    names = ["numpy"]
    if _numba.available():
        names.insert(0, "numba")
    if _torch.available():
        names.insert(len(names) - 1, "torch")
    return names


def _instantiate(name: str, device: str = "cpu") -> Backend:
    key = (name, device)
    backend = _INSTANCES.get(key)
    if backend is None:
        if name == "numpy":
            backend = NumpyBackend()
        elif name == "numba":
            backend = ResilientBackend(_numba.NumbaBackend())
        elif name == "torch":
            backend = ResilientBackend(_torch.TorchBackend(device=device))
        else:
            raise ValueError(
                f"unknown backend {name!r}; expected one of "
                f"{('auto',) + BACKEND_NAMES}"
            )
        _INSTANCES[key] = backend
    return backend


def _auto_backend() -> Backend:
    if _numba.available():
        return _instantiate("numba")
    if _torch.available():
        import torch

        if torch.cuda.is_available():  # pragma: no cover - needs a GPU
            return _instantiate("torch", device="cuda")
    return _instantiate("numpy")


def resolve_backend(spec: "str | Backend | None" = None) -> Backend:
    """Resolve a backend request to an instance.

    ``spec`` may be an instance (returned as-is), a name (``"numpy"``,
    ``"numba"``, ``"torch"``, ``"torch:<device>"``, ``"auto"``), or
    ``None`` — which consults ``REPRO_BACKEND`` and falls back to
    auto-detection.
    """
    if spec is None:
        spec = os.environ.get("REPRO_BACKEND", "").strip() or "auto"
    if not isinstance(spec, str):
        return spec
    if spec == "auto":
        return _auto_backend()
    name, _, device = spec.partition(":")
    return _instantiate(name, device or "cpu")


def default_backend() -> Backend:
    """The process-default backend (resolved lazily, once)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = resolve_backend()
    return _DEFAULT


def set_default_backend(spec: "str | Backend | None") -> Backend:
    """Replace the process default (``None`` re-enables lazy env/auto
    resolution); returns the newly active backend.  The CLI's
    ``--backend`` flag and tests are the intended callers."""
    global _DEFAULT
    _DEFAULT = None if spec is None else resolve_backend(spec)
    return default_backend()
