"""Numba backend: prange-threaded, ``@njit(cache=True)`` fused kernels.

The bincount/reduceat fusions the flat engine leans on compile to tight
C loops here, with the gather step (``take_ranges`` + fancy indexing)
folded *into* the loop — no position/weight temporaries at all.  Kernels
whose output cells are written by exactly one ``prange`` iteration (the
degree slices: one column per selected row; the ordered min/max: one
feature row per iteration) run multi-threaded; scatter-shaped kernels
whose cells mix contributions across rows stay single-threaded inside
``njit`` so the accumulation order — and therefore the floating-point
result — is *bit-identical* to the numpy reference.  All compiled
kernels release the GIL, which is what makes the round executor's
thread-fanned batched splits scale on this backend.

Import failure degrades gracefully: the module always imports, but
:func:`available` reports False and instantiating :class:`NumbaBackend`
raises — the ``auto`` resolution path skips it, and asking for it by
name produces a clear error instead of an ImportError mid-run.

First use of each kernel pays a one-off JIT compile (cached on disk via
``cache=True``, so repeat processes skip it).
"""

from __future__ import annotations

import numpy as np

from repro.core.backends import solver_numba
from repro.core.backends.numpy_backend import NumpyBackend

__all__ = ["NumbaBackend", "available"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    _NUMBA_ERROR: Exception | None = None
except ImportError as exc:  # keep the module importable without numba
    njit = prange = None
    _NUMBA_ERROR = exc


def available() -> bool:
    """True when the numba toolchain imported cleanly."""
    return _NUMBA_ERROR is None


if available():  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True)
    def _take_ranges(starts, counts):
        total = 0
        for i in range(counts.shape[0]):
            total += counts[i]
        out = np.empty(total, dtype=np.int64)
        pos = 0
        for i in range(starts.shape[0]):
            start = starts[i]
            for step in range(counts[i]):
                out[pos] = start + step
                pos += 1
        return out

    @njit(cache=True)
    def _scatter_add(indices, weights, size):
        out = np.zeros(size, dtype=np.float64)
        for p in range(indices.shape[0]):
            out[indices[p]] += weights[p]
        return out

    @njit(cache=True)
    def _scatter_select_sums(indptr, indices, data, select, size):
        out = np.zeros(size, dtype=np.float64)
        for s in range(select.shape[0]):
            node = select[s]
            for p in range(indptr[node], indptr[node + 1]):
                out[indices[p]] += data[p]
        return out

    @njit(cache=True)
    def _scatter_select_color_sums(indptr, indices, data, select, labels, k):
        out = np.zeros(k, dtype=np.float64)
        for s in range(select.shape[0]):
            node = select[s]
            for p in range(indptr[node], indptr[node + 1]):
                out[labels[indices[p]]] += data[p]
        return out

    @njit(cache=True, parallel=True)
    def _color_degree_slice(indptr, indices, data, rows, labels, k):
        r = rows.shape[0]
        out = np.zeros((k, r), dtype=np.float64)
        for t in prange(r):  # each iteration owns column t: race-free
            node = rows[t]
            for p in range(indptr[node], indptr[node + 1]):
                out[labels[indices[p]], t] += data[p]
        return out

    @njit(cache=True, parallel=True)
    def _color_degree_slice_pair(
        out_indptr, out_indices, out_data,
        in_indptr, in_indices, in_data,
        rows, labels, k,
    ):
        r = rows.shape[0]
        out = np.zeros((2, k, r), dtype=np.float64)
        for t in prange(r):
            node = rows[t]
            for p in range(out_indptr[node], out_indptr[node + 1]):
                out[0, labels[out_indices[p]], t] += out_data[p]
            for p in range(in_indptr[node], in_indptr[node + 1]):
                out[1, labels[in_indices[p]], t] += in_data[p]
        return out

    @njit(cache=True, parallel=True)
    def _select_degrees_toward_scalar(
        indptr, indices, data, rows, labels, target
    ):
        r = rows.shape[0]
        out = np.zeros(r, dtype=np.float64)
        for t in prange(r):
            node = rows[t]
            total = 0.0
            for p in range(indptr[node], indptr[node + 1]):
                if labels[indices[p]] == target:
                    total += data[p]
            out[t] = total
        return out

    @njit(cache=True, parallel=True)
    def _select_degrees_toward_array(
        indptr, indices, data, rows, labels, targets
    ):
        r = rows.shape[0]
        out = np.zeros(r, dtype=np.float64)
        for t in prange(r):
            node = rows[t]
            target = targets[t]
            total = 0.0
            for p in range(indptr[node], indptr[node + 1]):
                if labels[indices[p]] == target:
                    total += data[p]
            out[t] = total
        return out

    @njit(cache=True, parallel=True)
    def _grouped_minmax_ordered(values, order, starts):
        r = values.shape[0]
        total = order.shape[0]
        k = starts.shape[0]
        upper = np.empty((r, k), dtype=np.float64)
        lower = np.empty((r, k), dtype=np.float64)
        for f in prange(r):  # each iteration owns rows f of both outputs
            for g in range(k):
                begin = starts[g]
                end = starts[g + 1] if g + 1 < k else total
                hi = values[f, order[begin]]
                lo = hi
                for p in range(begin + 1, end):
                    v = values[f, order[p]]
                    if v > hi:
                        hi = v
                    if v < lo:
                        lo = v
                upper[f, g] = hi
                lower[f, g] = lo
        return upper, lower


def _contig(array) -> np.ndarray:
    """Numba specializes per dtype/layout signature, so arrays pass
    through unchanged (scipy's int32 CSR indices included) — no per-call
    O(m) dtype copies.  CSR arrays are already contiguous, making this a
    no-op on the hot path."""
    return np.ascontiguousarray(array)


class NumbaBackend(NumpyBackend):
    """Threaded compiled backend (see module docstring)."""

    name = "numba"
    parallel_kernels = True
    device = "cpu"

    def __init__(self) -> None:
        if not available():
            raise ImportError(
                "the numba backend needs the 'numba' package "
                f"(import failed: {_NUMBA_ERROR})"
            )

    # -- scatter-shaped kernels: serial njit, bit-identical to numpy --
    def scatter_add(self, indices, weights, size):
        if len(indices) == 0:
            return np.zeros(size, dtype=np.float64)
        return _scatter_add(
            _contig(indices),
            _contig(weights),
            size,
        )

    def bincount(self, keys, weights, minlength):
        if keys.size == 0:
            return np.zeros(minlength, dtype=np.float64)
        return _scatter_add(
            _contig(keys),
            _contig(weights),
            minlength,
        )

    def take_ranges(self, starts, counts):
        return _take_ranges(
            _contig(starts),
            _contig(counts),
        )

    def scatter_select_sums(self, indptr, indices, data, select, size):
        return _scatter_select_sums(
            _contig(indptr),
            _contig(indices),
            _contig(data),
            _contig(select),
            size,
        )

    def scatter_select_color_sums(
        self, indptr, indices, data, select, labels, n_colors
    ):
        return _scatter_select_color_sums(
            _contig(indptr),
            _contig(indices),
            _contig(data),
            _contig(select),
            _contig(labels),
            n_colors,
        )

    # -- slice-shaped kernels: prange over row-owned output cells --
    def color_degree_slice(self, indptr, indices, data, rows, labels, n_colors):
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0 or n_colors == 0:
            return np.zeros((n_colors, rows.size), dtype=np.float64)
        return _color_degree_slice(
            _contig(indptr),
            _contig(indices),
            _contig(data),
            _contig(rows),
            _contig(labels),
            n_colors,
        )

    def color_degree_slice_pair(
        self, csr_arrays, csc_arrays, rows, labels, n_colors
    ):
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0 or n_colors == 0:
            return np.zeros((2, n_colors, rows.size), dtype=np.float64)
        out_indptr, out_indices, out_data = csr_arrays
        in_indptr, in_indices, in_data = csc_arrays
        return _color_degree_slice_pair(
            _contig(out_indptr),
            _contig(out_indices),
            _contig(out_data),
            _contig(in_indptr),
            _contig(in_indices),
            _contig(in_data),
            _contig(rows),
            _contig(labels),
            n_colors,
        )

    def select_degrees_toward(self, indptr, indices, data, rows, labels, targets):
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.zeros(0, dtype=np.float64)
        args = (
            _contig(indptr),
            _contig(indices),
            _contig(data),
            _contig(rows),
            _contig(labels),
        )
        if np.ndim(targets) == 0:
            return _select_degrees_toward_scalar(*args, int(targets))
        return _select_degrees_toward_array(
            *args, _contig(targets)
        )

    def grouped_minmax_ordered(self, values, order, starts):
        if starts.size == 0:
            empty = np.empty((values.shape[0], 0), dtype=values.dtype)
            return empty, empty.copy()
        return _grouped_minmax_ordered(
            _contig(values),
            _contig(order),
            _contig(starts),
        )

    # -- solver kernels: fused sequential njit(nogil) loops ------------
    # (see solver_numba for the determinism argument per kernel)
    def solve_bfs_levels(self, indptr, arcs, head, cap, n, source, sink):
        return solver_numba.solve_bfs_levels(
            _contig(indptr), _contig(arcs), _contig(head), _contig(cap),
            n, source, sink,
        )

    def solve_bfs_parents(self, indptr, arcs, head, tail, cap, n, source, sink):
        return solver_numba.solve_bfs_parents(
            _contig(indptr), _contig(arcs), _contig(head), _contig(tail),
            _contig(cap), n, source, sink,
        )

    def solve_blocking_flow(self, local_indptr, heads, caps, source, sink):
        return solver_numba.solve_blocking_flow(
            _contig(local_indptr), _contig(heads), _contig(caps),
            source, sink,
        )

    def solve_push_relabel(self, indptr, arcs, head, cap, n, source, sink):
        return solver_numba.solve_push_relabel(
            _contig(indptr), _contig(arcs), _contig(head), _contig(cap),
            n, source, sink,
        )

    def solve_edmonds_karp(self, indptr, arcs, head, tail, cap, n, source, sink):
        return solver_numba.solve_edmonds_karp(
            _contig(indptr), _contig(arcs), _contig(head), _contig(tail),
            _contig(cap), n, source, sink,
        )

    def solve_brandes_batch(self, indptr, indices, sources, weights, n):
        return solver_numba.solve_brandes_batch(
            _contig(indptr), _contig(indices), _contig(sources),
            _contig(weights), n,
        )
