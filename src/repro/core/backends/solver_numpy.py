"""Numpy reference implementations of the solver kernel family.

These are the exact-solver counterparts of the coloring kernels in
:mod:`repro.core.backends.numpy_backend`: the frontier-batched residual
BFS (levels and discovery arcs), the blocking-flow DFS of Dinic's
phases, the fused highest-label push-relabel loop, the fused
Edmonds–Karp augmentation loop, and the batched multi-lane Brandes
dependency pass.  They define the semantics every backend must
reproduce to 1e-9 (the BFS/flow kernels are bit-identical; the Brandes
batch tolerates re-association of the dependency sums).

The module is deliberately **self-contained** — plain numpy only, no
imports from :mod:`repro.solvers` or :mod:`repro.core.kernels` — so the
backends package never forms an import cycle through the solver tier
(``core/kernels.py`` imports this package at module level).  The gather
helpers below mirror the reference kernels in ``numpy_backend``
verbatim.

All kernels are **pure** of observability: work counters (phases,
relabels, pushes, augmentations) are *returned* so the dispatch layer
in :mod:`repro.solvers` can report them once per solve.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

_EPS = 1e-12

__all__ = [
    "solve_bfs_levels",
    "solve_bfs_parents",
    "solve_blocking_flow",
    "solve_push_relabel",
    "solve_edmonds_karp",
    "solve_brandes_batch",
]


def _take_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, start + count)`` (cumsum trick);
    mirrors ``numpy_backend.take_ranges``."""
    nonempty = counts > 0
    starts = starts[nonempty]
    counts = counts[nonempty]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    result = np.ones(total, dtype=np.int64)
    ends = np.cumsum(counts)
    result[0] = starts[0]
    result[ends[:-1]] = starts[1:] - starts[:-1] - counts[:-1] + 1
    return np.cumsum(result)


def _unique_int(values: np.ndarray) -> np.ndarray:
    """Sorted unique of an int array (sort + diff mask)."""
    if values.size <= 1:
        return values
    values = np.sort(values)
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


def _frontier_arcs(
    indptr: np.ndarray,
    arcs: np.ndarray,
    cap: np.ndarray,
    frontier: np.ndarray,
) -> np.ndarray:
    """All residual arcs (cap > eps) leaving the frontier nodes."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    out = arcs[_take_ranges(starts, counts)]
    return out[cap[out] > _EPS]


# ----------------------------------------------------------------------
# residual BFS
# ----------------------------------------------------------------------
def solve_bfs_levels(
    indptr: np.ndarray,
    arcs: np.ndarray,
    head: np.ndarray,
    cap: np.ndarray,
    n: int,
    source: int,
    sink: int,
) -> np.ndarray:
    """Frontier-batched BFS levels of the residual graph.

    Unreached nodes get ``-1``.  ``sink < 0`` runs the full BFS
    (reachability); otherwise expansion stops as soon as the sink's
    level is assigned — the whole level is finished first, so every
    shortest admissible arc survives (Dinic's level graph).
    """
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        heads = head[_frontier_arcs(indptr, arcs, cap, frontier)]
        heads = heads[level[heads] < 0]
        if heads.size == 0:
            break
        frontier = _unique_int(heads)
        depth += 1
        level[frontier] = depth
        if sink >= 0 and level[sink] == depth:
            break
    return level


def solve_bfs_parents(
    indptr: np.ndarray,
    arcs: np.ndarray,
    head: np.ndarray,
    tail: np.ndarray,
    cap: np.ndarray,
    n: int,
    source: int,
    sink: int,
) -> np.ndarray:
    """Shortest-path discovery arcs (Edmonds–Karp's BFS).

    ``parent_arc[v]`` is the arc that first reached ``v`` on some
    shortest residual path from the source — the *first occurrence* in
    (ascending frontier node, adjacency position) order, which every
    backend must reproduce exactly so the augmentation sequence is
    identical.  ``parent_arc[sink] < 0`` signals an unreachable sink.
    Expansion stops after the level at which the sink is discovered.
    """
    parent_arc = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    while frontier.size:
        arc_ids = _frontier_arcs(indptr, arcs, cap, frontier)
        heads = head[arc_ids]
        fresh = ~visited[heads]
        arc_ids, heads = arc_ids[fresh], heads[fresh]
        if heads.size == 0:
            return parent_arc
        # First-occurrence dedupe (stable sort keeps discovery order).
        order = np.argsort(heads, kind="stable")
        sorted_heads = heads[order]
        keep = np.empty(sorted_heads.size, dtype=bool)
        keep[0] = True
        np.not_equal(sorted_heads[1:], sorted_heads[:-1], out=keep[1:])
        frontier = sorted_heads[keep]
        visited[frontier] = True
        parent_arc[frontier] = arc_ids[order[keep]]
        if visited[sink]:
            return parent_arc
    return parent_arc


# ----------------------------------------------------------------------
# Dinic blocking flow (compacted level graph)
# ----------------------------------------------------------------------
def solve_blocking_flow(
    local_indptr: np.ndarray,
    heads: np.ndarray,
    caps: np.ndarray,
    source: int,
    sink: int,
) -> Tuple[float, np.ndarray]:
    """Iterative current-arc DFS over one compacted level graph.

    ``local_indptr``/``heads``/``caps`` describe only the admissible,
    sink-reaching arcs of the phase (tail-grouped), so no level checks
    are needed while advancing.  Returns ``(total, flows)`` — the
    blocking-flow value and the per-arc pushes to scatter back into the
    residual vector.  ``caps`` is consumed (callers pass a copy).

    The reference runs on plain Python lists: the DFS is scalar-bound,
    and list indexing beats numpy scalar indexing by ~3x here.  Compiled
    backends fuse the same algorithm — identical advance/retreat/kill
    decisions, identical float arithmetic.
    """
    indptr: List[int] = local_indptr.tolist()
    head_list: List[int] = heads.tolist()
    cap_list: List[float] = caps.tolist()
    flows: List[float] = [0.0] * len(head_list)
    n = len(indptr) - 1
    cursor = indptr[:n]
    limit = indptr[1:]
    total = 0.0
    stack = [source]
    path: List[int] = []
    while stack:
        u = stack[-1]
        if u == sink:
            bottleneck = min(map(cap_list.__getitem__, path))
            total += bottleneck
            # Augment and retreat to the first saturated arc, fused in
            # one pass over the (short) path.
            cut = -1
            for index, a in enumerate(path):
                remaining = cap_list[a] - bottleneck
                cap_list[a] = remaining
                flows[a] += bottleneck
                if cut < 0 and remaining <= _EPS:
                    cut = index
            del stack[cut + 1 :]
            del path[cut:]
            continue
        position = cursor[u]
        end = limit[u]
        while position < end and cap_list[position] <= _EPS:
            position += 1
        cursor[u] = position
        if position < end:
            stack.append(head_list[position])
            path.append(position)
        else:
            # Dead end: kill the arc into u so predecessors skip it.
            stack.pop()
            if path:
                cap_list[path.pop()] = 0.0
    return total, np.asarray(flows)


# ----------------------------------------------------------------------
# push-relabel (highest-label, bucket lists, gap heuristic)
# ----------------------------------------------------------------------
def solve_push_relabel(
    indptr: np.ndarray,
    arcs: np.ndarray,
    head: np.ndarray,
    cap_array: np.ndarray,
    n: int,
    source: int,
    sink: int,
) -> Tuple[float, int, int]:
    """Fused highest-label push-relabel; mutates ``cap_array`` in place.

    Returns ``(flow_value, relabels, pushes)``.  Bucket discipline is
    LIFO per height with stale entries refiled on pop (the gap heuristic
    moves nodes without touching their bucket), and discharge scans arcs
    in adjacency order — compiled backends must reproduce exactly this
    order to stay bit-identical.
    """
    cap = cap_array.tolist()
    head_list = head.tolist()
    arc_list = arcs.tolist()
    indptr_list = indptr.tolist()

    height = [0] * n
    excess = [0.0] * n
    count_at_height = [0] * (2 * n + 1)
    height[source] = n
    count_at_height[0] = n - 1
    count_at_height[n] += 1
    cursor = indptr_list[:n]
    buckets: List[List[int]] = [[] for _ in range(2 * n + 1)]
    in_queue = [False] * n
    highest = -1
    relabels = 0
    pushes = 0

    def activate(v: int) -> None:
        nonlocal highest
        if v != source and v != sink and not in_queue[v]:
            in_queue[v] = True
            buckets[height[v]].append(v)
            if height[v] > highest:
                highest = height[v]

    # Saturate every source arc (reverse twins start at zero capacity,
    # so the cap > eps filter keeps only real forward arcs).
    for position in range(indptr_list[source], indptr_list[source + 1]):
        a = arc_list[position]
        delta = cap[a]
        if delta > _EPS:
            v = head_list[a]
            cap[a] = 0.0
            cap[a ^ 1] += delta
            excess[v] += delta
            activate(v)

    def relabel(u: int) -> None:
        nonlocal relabels
        relabels += 1
        old_height = height[u]
        min_height = 2 * n
        for position in range(indptr_list[u], indptr_list[u + 1]):
            a = arc_list[position]
            if cap[a] > _EPS:
                h = height[head_list[a]]
                if h < min_height:
                    min_height = h
        if min_height >= 2 * n:
            # A node with excess always has a residual arc back toward
            # the source; hitting this means corrupted residual state.
            raise RuntimeError(f"relabel of node {u} found no residual arc")
        count_at_height[old_height] -= 1
        height[u] = min_height + 1
        count_at_height[min_height + 1] += 1
        cursor[u] = indptr_list[u]
        # Gap heuristic: an emptied level below n strands every node
        # above it (except s) — lift them past n in one sweep.
        if count_at_height[old_height] == 0 and old_height < n:
            for node in range(n):
                if node != source and old_height < height[node] <= n:
                    count_at_height[height[node]] -= 1
                    height[node] = n + 1
                    count_at_height[n + 1] += 1

    while highest >= 0:
        bucket = buckets[highest]
        if not bucket:
            highest -= 1
            continue
        u = bucket.pop()
        if height[u] != highest:
            # Stale entry (gap heuristic moved u): refile at its true
            # height so its excess still drains.
            buckets[height[u]].append(u)
            if height[u] > highest:
                highest = height[u]
            continue
        in_queue[u] = False
        # Discharge u completely.
        while excess[u] > _EPS:
            position = cursor[u]
            if position == indptr_list[u + 1]:
                relabel(u)
                continue
            a = arc_list[position]
            v = head_list[a]
            if cap[a] > _EPS and height[u] == height[v] + 1:
                delta = excess[u]
                if cap[a] < delta:
                    delta = cap[a]
                cap[a] -= delta
                cap[a ^ 1] += delta
                excess[u] -= delta
                excess[v] += delta
                pushes += 1
                activate(v)
            else:
                cursor[u] = position + 1

    cap_array[:] = cap
    return excess[sink], relabels, pushes


# ----------------------------------------------------------------------
# Edmonds–Karp (fused BFS + augmentation loop)
# ----------------------------------------------------------------------
def solve_edmonds_karp(
    indptr: np.ndarray,
    arcs: np.ndarray,
    head: np.ndarray,
    tail: np.ndarray,
    cap: np.ndarray,
    n: int,
    source: int,
    sink: int,
) -> Tuple[float, int]:
    """Shortest augmenting paths; mutates ``cap`` in place.

    Returns ``(flow_value, augmentations)``.  Each BFS uses the
    first-occurrence parent rule of :func:`solve_bfs_parents`, so the
    augmenting-path sequence — and therefore the final residual state —
    is identical across backends.
    """
    total = 0.0
    augmentations = 0
    while True:
        parent_arc = solve_bfs_parents(
            indptr, arcs, head, tail, cap, n, source, sink
        )
        if parent_arc[sink] < 0:
            break
        augmentations += 1
        # Collect the path, then augment by its bottleneck.
        path = []
        v = sink
        while v != source:
            a = int(parent_arc[v])
            path.append(a)
            v = int(tail[a])
        path_array = np.asarray(path, dtype=np.int64)
        bottleneck = float(cap[path_array].min())
        cap[path_array] -= bottleneck
        cap[path_array ^ 1] += bottleneck
        total += bottleneck
    return total, augmentations


# ----------------------------------------------------------------------
# batched Brandes dependencies
# ----------------------------------------------------------------------
def solve_brandes_batch(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    weights: np.ndarray,
    n: int,
) -> np.ndarray:
    """Weighted sum of dependency vectors over a block of BFS sources.

    All lanes run in lock-step: node ``v`` of lane ``b`` is the flat key
    ``b * n + v``, so one gather/scatter per global depth serves every
    source in the block.  Compiled backends may instead run the sources
    sequentially (sigma counts are exact integers in float64, so only
    the dependency sums re-associate — within 1e-9 of this reference).
    """
    lanes = len(sources)
    size = lanes * n
    dist = np.full(size, -1, dtype=np.int32)
    sigma = np.zeros(size)
    keys = np.arange(lanes, dtype=np.int64) * n + sources
    dist[keys] = 0
    sigma[keys] = 1.0
    frontier = keys
    levels: List[Tuple[np.ndarray, np.ndarray]] = []
    depth = 0
    while frontier.size:
        nodes = frontier % n
        starts = indptr[nodes]
        counts = indptr[nodes + 1] - starts
        positions = _take_ranges(starts, counts)
        heads = (
            np.repeat(frontier - nodes, counts) + indices[positions]
        )
        tails = np.repeat(frontier, counts)
        # Crossing arcs == arcs whose head was undiscovered at gather
        # time; one gather serves discovery and the sigma scatter alike.
        crossing = dist[heads] < 0
        tails, heads = tails[crossing], heads[crossing]
        if tails.size == 0:
            break
        dist[heads] = depth + 1
        sigma += np.bincount(heads, weights=sigma[tails], minlength=size)
        levels.append((tails, heads))
        frontier = _unique_int(heads)
        depth += 1
    delta = np.zeros(size)
    for tails, heads in reversed(levels):
        contributions = sigma[tails] / sigma[heads] * (1.0 + delta[heads])
        delta += np.bincount(tails, weights=contributions, minlength=size)
    delta[keys] = 0.0
    return weights @ delta.reshape(lanes, n)
