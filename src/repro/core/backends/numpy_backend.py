"""The numpy reference backend — the semantics every backend must match.

These are the flat-array kernels the engines were originally written
against (moved here from :mod:`repro.core.kernels`, which now fronts
the active backend): each is one or two ``np.bincount`` / ``reduceat``
passes over CSR/CSC index arrays, no Python-level loops.  They are
**pure** — no observability calls — so the dispatch layer and the
engine's chunk loops can do their counter accounting once per logical
kernel call instead of once per chunk.

Other backends subclass :class:`NumpyBackend` and override only the
kernels they accelerate; anything untouched falls back to these
reference implementations, which keeps partial backends correct by
construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends import solver_numpy

__all__ = ["NumpyBackend"]


def scatter_add(
    indices: np.ndarray, weights: np.ndarray, size: int
) -> np.ndarray:
    """Dense ``out[i] = sum of weights where indices == i`` (length ``size``).

    ``np.bincount`` compiles to a single C loop and beats both
    ``np.add.at`` and per-element Python accumulation by a wide margin.
    """
    if len(indices) == 0:
        return np.zeros(size, dtype=np.float64)
    return np.bincount(indices, weights=weights, minlength=size)


def bincount(
    keys: np.ndarray, weights: np.ndarray, minlength: int
) -> np.ndarray:
    """Weighted bincount over flat keys (fused-scatter primitive)."""
    if keys.size == 0:
        return np.zeros(minlength, dtype=np.float64)
    return np.bincount(keys, weights=weights, minlength=minlength)


def take_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, start + count)`` for each pair.

    The standard cumsum trick: build a vector of ones, overwrite each
    range's first slot with the jump from the previous range's end, and
    integrate.  Empty ranges are dropped first so jump targets never
    collide.
    """
    counts = np.asarray(counts, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    nonempty = counts > 0
    starts = starts[nonempty]
    counts = counts[nonempty]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    result = np.ones(total, dtype=np.int64)
    ends = np.cumsum(counts)
    result[0] = starts[0]
    result[ends[:-1]] = starts[1:] - starts[:-1] - counts[:-1] + 1
    return np.cumsum(result)


def scatter_select_sums(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    select: np.ndarray,
    size: int,
) -> np.ndarray:
    """Sum of the selected CSR rows (or CSC columns), scattered by index.

    For a CSC adjacency and ``select = members(P_j)`` this is exactly the
    degree-matrix column ``D_out[:, j] = w(v, P_j)``; on the CSR arrays it
    yields ``D_in[:, j] = w(P_j, v)``.  Runs in ``O(nnz(select))`` — no
    fancy-indexed sparse slicing, no intermediate sparse matrix.
    """
    select = np.asarray(select, dtype=np.int64)
    starts = indptr[select]
    counts = indptr[select + 1] - starts
    positions = take_ranges(starts, counts)
    return scatter_add(indices[positions], data[positions], size)


def scatter_select_color_sums(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    select: np.ndarray,
    labels: np.ndarray,
    n_colors: int,
) -> np.ndarray:
    """Total weight of the selected CSR rows (CSC columns), per *color*.

    On the CSR arrays with ``select = members(P_i)`` this is one row of
    the block-weight matrix: ``W[i, j] = w(P_i, P_j)`` for every ``j``;
    on the CSC arrays it yields the column ``W[:, i] = w(P_j, P_i)``.
    """
    select = np.asarray(select, dtype=np.int64)
    starts = indptr[select]
    counts = indptr[select + 1] - starts
    positions = take_ranges(starts, counts)
    return scatter_add(labels[indices[positions]], data[positions], n_colors)


def color_degree_slice(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    rows: np.ndarray,
    labels: np.ndarray,
    n_colors: int,
) -> np.ndarray:
    """Dense ``k x |rows|`` degree slice of the selected CSR rows.

    Column ``r`` holds the total weight from ``rows[r]`` toward every
    color.  One ``O(nnz(rows) + k |rows|)`` bincount over flattened
    ``(color, local row)`` keys.  Rows absent from the selection's
    neighborhoods come out exactly zero (no subtraction residues), which
    the geometric/relative split thresholds rely on.
    """
    rows = np.asarray(rows, dtype=np.int64)
    r = rows.size
    if r == 0 or n_colors == 0:
        return np.zeros((n_colors, r), dtype=np.float64)
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    positions = take_ranges(starts, counts)
    local = np.repeat(np.arange(r, dtype=np.int64), counts)
    flat = labels[indices[positions]] * r + local
    return np.bincount(
        flat, weights=data[positions], minlength=n_colors * r
    ).reshape(n_colors, r)


def color_degree_slice_pair(
    csr_arrays: tuple[np.ndarray, np.ndarray, np.ndarray],
    csc_arrays: tuple[np.ndarray, np.ndarray, np.ndarray],
    rows: np.ndarray,
    labels: np.ndarray,
    n_colors: int,
) -> np.ndarray:
    """Both directions' degree slices of a row subset in one bincount.

    Returns ``(2, k, |rows|)``: layer 0 is the out slice (from the CSR
    arrays), layer 1 the in slice (from the CSC arrays).
    """
    rows = np.asarray(rows, dtype=np.int64)
    r = rows.size
    if r == 0 or n_colors == 0:
        return np.zeros((2, n_colors, r), dtype=np.float64)
    keys: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    for layer, (indptr, indices, data) in enumerate((csr_arrays, csc_arrays)):
        starts = indptr[rows]
        counts = indptr[rows + 1] - starts
        positions = take_ranges(starts, counts)
        local = np.repeat(np.arange(r, dtype=np.int64), counts)
        keys.append(
            (labels[indices[positions]] + layer * n_colors) * r + local
        )
        weights.append(data[positions])
    flat = np.concatenate(keys)
    if flat.size == 0:
        return np.zeros((2, n_colors, r), dtype=np.float64)
    return np.bincount(
        flat, weights=np.concatenate(weights), minlength=2 * n_colors * r
    ).reshape(2, n_colors, r)


def select_degrees_toward(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    rows: np.ndarray,
    labels: np.ndarray,
    targets: int | np.ndarray,
) -> np.ndarray:
    """Per selected row, the total weight toward a target color.

    ``targets`` is either one color id or an array of one target per
    row.  Sums are taken directly over the matching entries, so a row
    with no edges toward its target is exactly ``0.0``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    r = rows.size
    if r == 0:
        return np.zeros(0, dtype=np.float64)
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    positions = take_ranges(starts, counts)
    edge_colors = labels[indices[positions]]
    if np.ndim(targets) == 0:
        mask = edge_colors == int(targets)
    else:
        per_edge = np.repeat(np.asarray(targets, dtype=np.int64), counts)
        mask = edge_colors == per_edge
    local = np.repeat(np.arange(r, dtype=np.int64), counts)
    return np.bincount(local[mask], weights=data[positions][mask], minlength=r)


def grouped_minmax_by_labels(
    values: np.ndarray, labels: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-label max/min of a row-per-node array (1-D or 2-D).

    Labels must be contiguous ``0..k-1`` with no empty classes
    (``reduceat`` over duplicated start offsets would silently read the
    wrong element otherwise).
    """
    if k == 0:
        shape = (0,) if values.ndim == 1 else (0, values.shape[1])
        return (
            np.empty(shape, dtype=values.dtype),
            np.empty(shape, dtype=values.dtype),
        )
    order = np.argsort(labels, kind="stable")
    sizes = np.bincount(labels, minlength=k)
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    sorted_values = values[order]
    if values.ndim == 1:
        upper = np.maximum.reduceat(sorted_values, starts)
        lower = np.minimum.reduceat(sorted_values, starts)
    else:
        upper = np.maximum.reduceat(sorted_values, starts, axis=0)
        lower = np.minimum.reduceat(sorted_values, starts, axis=0)
    return upper, lower


def grouped_minmax_ordered(
    values: np.ndarray, order: np.ndarray, starts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-color max/min over the columns of a feature-major array, given
    a precomputed members order.  ``values`` is ``(r, n)``; the result
    pair is ``(r, k)`` — one ``O(r n)`` gather + ``reduceat``.
    """
    if starts.size == 0:
        empty = np.empty((values.shape[0], 0), dtype=values.dtype)
        return empty, empty.copy()
    sorted_values = values[:, order]
    upper = np.maximum.reduceat(sorted_values, starts, axis=1)
    lower = np.minimum.reduceat(sorted_values, starts, axis=1)
    return upper, lower


class NumpyBackend:
    """Reference backend: the module-level kernels above, verbatim.

    Always available; the parity baseline every other backend is tested
    against.  ``parallel_kernels`` is False — numpy's bincount paths
    hold the GIL, so the round executor prefers the shared-memory
    process path over threads for this backend.
    """

    name = "numpy"
    parallel_kernels = False
    device = "cpu"

    scatter_add = staticmethod(scatter_add)
    bincount = staticmethod(bincount)
    take_ranges = staticmethod(take_ranges)
    scatter_select_sums = staticmethod(scatter_select_sums)
    scatter_select_color_sums = staticmethod(scatter_select_color_sums)
    color_degree_slice = staticmethod(color_degree_slice)
    color_degree_slice_pair = staticmethod(color_degree_slice_pair)
    select_degrees_toward = staticmethod(select_degrees_toward)
    grouped_minmax_by_labels = staticmethod(grouped_minmax_by_labels)
    grouped_minmax_ordered = staticmethod(grouped_minmax_ordered)

    # solver kernel family (reference semantics in solver_numpy)
    solve_bfs_levels = staticmethod(solver_numpy.solve_bfs_levels)
    solve_bfs_parents = staticmethod(solver_numpy.solve_bfs_parents)
    solve_blocking_flow = staticmethod(solver_numpy.solve_blocking_flow)
    solve_push_relabel = staticmethod(solver_numpy.solve_push_relabel)
    solve_edmonds_karp = staticmethod(solver_numpy.solve_edmonds_karp)
    solve_brandes_batch = staticmethod(solver_numpy.solve_brandes_batch)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} device={self.device!r}>"
