"""Round executor: fan color-disjoint witness work across workers.

The batched strategy's rounds are embarrassingly parallel by
construction — the top-``B`` witnesses are pairwise color-disjoint, so
their threshold-degree gathers and eject masks read disjoint member
sets against the same pre-round snapshot, and the post-round refresh
writes disjoint rows/columns of the boundary matrices.  The executor
turns that structural independence into wall-clock:

``serial``
    plain in-order loop (the default, and the reference the
    determinism test compares against);
``threads``
    a shared :class:`~concurrent.futures.ThreadPoolExecutor` — the
    right mode for backends whose kernels release the GIL (numba's
    compiled loops, torch's ATen ops);
``processes``
    a fork/spawn worker pool over a **shared-memory mirror** of the
    engine's CSR/CSC snapshots and label array
    (:mod:`multiprocessing.shared_memory`), for the numpy backend whose
    bincount paths hold the GIL.  The big arrays are written once —
    or, when the snapshots are file-backed memmaps (edge-store graphs),
    not written anywhere: workers reopen the store files read-only and
    share the parent's page-cache pages.  Labels are refreshed in place
    before each round (children attached the same physical pages, so
    the O(n) copy is the entire synchronization cost), and only the
    per-witness member lists and returned masks cross the pickle
    boundary.

Every mode returns results **in submission order**, so a parallel round
commits exactly the splits, in exactly the order, that the serial round
would — bit-for-bit identical colorings (tested).

Process mode is **self-healing**: jobs are submitted individually and
polled, so a worker that dies (OOM killer, segfault) or hangs is
detected — the pool is rebuilt with exponential backoff and the round
retried, and past :data:`_MAX_POOL_RETRIES` the executor permanently
degrades ``processes -> threads`` (and on thread-pool failure,
``-> serial``), re-running the round in the surviving mode.  A worker
task that *raises* is cheaper: the parent recomputes just that job
serially.  Every recovery preserves the submission-order contract —
the job bodies are pure functions of the snapshot, so a recomputed or
degraded round commits bit-identical results — and is counted under
``resilience.fallback.*``.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.obs import recorder as _obs
from repro.resilience.faults import inject

__all__ = ["RoundExecutor", "resolve_workers"]

MODES = ("serial", "threads", "processes")

#: seconds of zero round progress before the pool is declared hung
#: (override per executor or with ``REPRO_TASK_TIMEOUT``)
DEFAULT_TASK_TIMEOUT = 300.0
#: pool rebuild attempts before degrading processes -> threads
_MAX_POOL_RETRIES = 2
#: base of the exponential backoff between pool rebuilds, seconds
_BACKOFF_BASE = 0.1
#: poll interval while waiting on in-flight process jobs, seconds
_POLL_INTERVAL = 0.01

#: module-global worker state: shared-memory attachments, set once per
#: worker by :func:`_attach_worker` (each worker process has its own copy)
_WORKER_STATE: dict = {}


class _PoolFailure(RuntimeError):
    """Internal: the process pool died or stalled mid-round."""


def resolve_workers(workers: int | None = None) -> int:
    """Worker count: explicit argument > ``REPRO_WORKERS`` env > 1.

    Parallel rounds are opt-in — the default of 1 keeps the engine's
    single-threaded profile (and its exact numpy-path performance)
    unless the caller or the environment asks for fan-out.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        workers = int(env) if env else 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _attach_worker(blocks: list[tuple[str, str, tuple]]) -> None:
    """Pool initializer: attach the parent's shared or memmapped arrays.

    ``"shm"`` blocks attach a shared-memory segment by name; ``"file"``
    blocks reopen a read-only memmap over the parent's backing file —
    the kernel page cache makes that the same physical pages the parent
    streams, so file-backed snapshots cost no per-worker copy at all.
    """
    from multiprocessing import shared_memory

    from repro.graphs.edgestore import open_descriptor

    handles = []
    for key, kind, spec in blocks:
        if kind == "file":
            _WORKER_STATE[key] = open_descriptor(spec)
            continue
        name, dtype, shape = spec
        shm = shared_memory.SharedMemory(name=name)
        handles.append(shm)  # keep alive for the worker's lifetime
        _WORKER_STATE[key] = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=shm.buf
        )
    _WORKER_STATE["_handles"] = handles


def _run_worker_job(payload: tuple):
    """Worker-side choke point for every process-pool job.

    The injection site lets tests kill, hang, or fail a real pool
    worker mid-round; with no plan installed (production) the wrapper
    is one function call.  Only the process path routes through here —
    the thread/serial recovery paths call ``compute_serial`` directly,
    which is what terminates a fork-inherited kill schedule once the
    executor degrades.
    """
    worker_fn, job = payload
    inject("executor.task")
    return worker_fn(job)


def _eject_mask_task(job: tuple) -> np.ndarray | None:
    """Worker body: threshold degrees + eject mask for one witness.

    Runs against the shared-memory CSR/CSC/label arrays; ``None`` marks
    the constant-degree guard (the caller drops that witness for the
    round, exactly as the serial path does).
    """
    from repro.core.backends.numpy_backend import select_degrees_toward
    from repro.core.rothko import split_eject_mask
    from repro.exceptions import ColoringError

    direction, members, target, split_mean, relative = job
    prefix = "csr" if direction == "out" else "csc"
    degrees = select_degrees_toward(
        _WORKER_STATE[f"{prefix}_indptr"],
        _WORKER_STATE[f"{prefix}_indices"],
        _WORKER_STATE[f"{prefix}_data"],
        members,
        _WORKER_STATE["labels"],
        target,
    )
    try:
        return split_eject_mask(degrees, split_mean, relative=relative)
    except ColoringError:
        return None


class _SharedGraphMirror:
    """Worker-visible views of the CSR/CSC arrays plus a live label slot.

    Arrays that are already file-backed memmaps (edge-store snapshots)
    are published as picklable file descriptors — workers reopen the
    same file read-only and share its page-cache pages, so the graph is
    never copied per worker *or* into shared memory.  Everything else
    (resident snapshots, and always the ``live`` keys, which must stay
    writable for per-round updates) is mirrored into POSIX shared
    memory as before.
    """

    def __init__(
        self, arrays: dict[str, np.ndarray], live: frozenset = frozenset()
    ) -> None:
        from multiprocessing import shared_memory

        from repro.graphs.edgestore import memmap_descriptor

        self._shms = []
        self._views: dict[str, np.ndarray] = {}
        self.blocks: list[tuple[str, str, tuple]] = []
        for key, array in arrays.items():
            if key not in live:
                descriptor = memmap_descriptor(array)
                if descriptor is not None:
                    self.blocks.append((key, "file", descriptor))
                    continue
            array = np.ascontiguousarray(array)
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, array.nbytes)
            )
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
            view[...] = array
            self._shms.append(shm)
            self._views[key] = view
            self.blocks.append(
                (key, "shm", (shm.name, array.dtype.str, array.shape))
            )

    def update(self, key: str, array: np.ndarray) -> None:
        self._views[key][...] = array

    def close(self) -> None:
        for shm in self._shms:
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):  # already torn down
                pass
        self._shms.clear()
        self._views.clear()


class RoundExecutor:
    """Maps round work across workers; see module docstring for modes."""

    def __init__(
        self,
        mode: str,
        workers: int,
        task_timeout: float | None = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.mode = mode if workers > 1 else "serial"
        self.workers = workers if self.mode != "serial" else 1
        if task_timeout is None:
            env = os.environ.get("REPRO_TASK_TIMEOUT", "").strip()
            task_timeout = float(env) if env else DEFAULT_TASK_TIMEOUT
        self.task_timeout = float(task_timeout)
        self._thread_pool: ThreadPoolExecutor | None = None
        self._process_pool = None
        self._pool_pids: tuple[int, ...] = ()
        self._mirror: _SharedGraphMirror | None = None

    @classmethod
    def resolve(
        cls,
        workers: int | None = None,
        mode: str | None = None,
        parallel_kernels: bool = False,
    ) -> "RoundExecutor":
        """Pick the executor for a backend.

        ``mode=None`` auto-selects: threads when the backend's kernels
        release the GIL, the shared-memory process path otherwise.
        """
        workers = resolve_workers(workers)
        if mode is None:
            mode = "threads" if parallel_kernels else "processes"
        return cls(mode, workers)

    # -- thread/serial mapping ------------------------------------------
    def map(self, fn, items: list) -> list:
        """Apply ``fn`` to every item, results in submission order.

        Used for the in-engine refresh fan-out, where ``fn`` closes over
        engine state: threads share it directly; the process mode cannot
        (the closure is not picklable), so it degrades to serial here
        and parallelizes only the shared-memory mask stage.
        """
        if self.mode == "threads" and len(items) > 1:
            return list(self._threads().map(fn, items))
        return [fn(item) for item in items]

    def _threads(self) -> ThreadPoolExecutor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-round",
            )
        return self._thread_pool

    # -- shared-memory process mapping ----------------------------------
    def attach_arrays(
        self, arrays: dict[str, np.ndarray], live: frozenset = frozenset()
    ) -> None:
        """Mirror named arrays into worker-visible storage, start the pool.

        The generic process-mode attachment: workers read the arrays
        back from the module-global ``_WORKER_STATE`` under the given
        names (file-backed memmaps are reopened via the page cache,
        everything else lands in POSIX shared memory; ``live`` keys
        always get shared memory so :meth:`_SharedGraphMirror.update`
        can refresh them between rounds).  Idempotent — the first
        caller wins; a no-op outside process mode.
        """
        if self.mode != "processes" or self._process_pool is not None:
            return
        self._mirror = _SharedGraphMirror(arrays, live=live)
        self._start_pool()

    def _start_pool(self) -> None:
        """(Re)build the worker pool over the existing mirror."""
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork: spawn still works,
            context = multiprocessing.get_context()  # attach is by name
        self._process_pool = context.Pool(
            processes=self.workers,
            initializer=_attach_worker,
            initargs=(self._mirror.blocks,),
        )
        self._pool_pids = tuple(
            proc.pid for proc in self._process_pool._pool
        )

    def _stop_pool(self) -> None:
        if self._process_pool is not None:
            self._process_pool.terminate()
            self._process_pool.join()
            self._process_pool = None
            self._pool_pids = ()

    def _degrade(self, new_mode: str, reason: str) -> None:
        """Permanently drop to a weaker mode after repeated failures."""
        from repro.resilience.fallback import ResilienceWarning

        _obs._active.count("resilience.fallback.degrade")
        warnings.warn(
            f"round executor degrading {self.mode!r} -> {new_mode!r}: "
            f"{reason}; results stay bit-identical, only throughput "
            f"changes",
            ResilienceWarning,
            stacklevel=4,
        )
        self._stop_pool()
        if self._mirror is not None and new_mode != "processes":
            self._mirror.close()
            self._mirror = None
        self.mode = new_mode

    def attach_graph(
        self,
        csr_arrays: tuple[np.ndarray, np.ndarray, np.ndarray],
        csc_arrays: tuple[np.ndarray, np.ndarray, np.ndarray],
        labels: np.ndarray,
    ) -> None:
        """Mirror the engine's snapshots into shared memory.

        Idempotent; called lazily before the first process-mode round.
        """
        names = ("indptr", "indices", "data")
        arrays = {f"csr_{n}": a for n, a in zip(names, csr_arrays)}
        arrays.update({f"csc_{n}": a for n, a in zip(names, csc_arrays)})
        arrays["labels"] = labels
        self.attach_arrays(arrays, live=frozenset({"labels"}))

    def run_jobs(self, worker_fn, jobs: list, compute_serial) -> list:
        """Generic fan-out of picklable jobs, results in submission order.

        ``worker_fn`` must be a module-level function that reads any
        bulk arrays from ``_WORKER_STATE`` (populated by
        :meth:`attach_arrays`); ``compute_serial(job)`` is the
        in-process body used for serial and thread modes.  Submission
        order is the determinism contract: callers reduce the results
        left-to-right and get the serial answer bit-for-bit whenever
        the per-job computation is exact (and within re-association
        tolerance otherwise).
        """
        if self.mode == "processes" and len(jobs) > 1:
            for attempt in range(_MAX_POOL_RETRIES + 1):
                try:
                    return self._collect_process_jobs(
                        worker_fn, jobs, compute_serial
                    )
                except _PoolFailure as exc:
                    self._stop_pool()
                    if attempt == _MAX_POOL_RETRIES:
                        self._degrade(
                            "threads",
                            f"pool failed {attempt + 1} times ({exc})",
                        )
                        break
                    _obs._active.count("resilience.fallback.pool_restart")
                    time.sleep(_BACKOFF_BASE * 2**attempt)
                    self._start_pool()
        if self.mode == "threads" and len(jobs) > 1:
            try:
                futures = [
                    self._threads().submit(compute_serial, job)
                    for job in jobs
                ]
            except RuntimeError as exc:  # pool unusable (shutdown, limits)
                self._degrade("serial", f"thread pool failed ({exc})")
            else:
                results = []
                for job, future in zip(jobs, futures):
                    try:
                        results.append(future.result())
                    except Exception:
                        # A failed thread job is retried in-process; the
                        # job body is pure, so the answer is identical.
                        _obs._active.count("resilience.fallback.task")
                        results.append(compute_serial(job))
                return results
        return [compute_serial(job) for job in jobs]

    def _collect_process_jobs(
        self, worker_fn, jobs: list, compute_serial
    ) -> list:
        """One attempt at a process-mode round, polled not blocked.

        ``pool.map`` would block forever on a killed worker (its task is
        simply lost); individual ``apply_async`` handles plus a poll
        loop let the parent notice both death (the pool's pid set
        changed — ``Pool`` respawns workers, but the in-flight task died
        with the old one) and hangs (no task completed for
        ``task_timeout`` seconds).  A task that merely *raises* is
        recomputed serially in the parent — same snapshot, same bits.
        """
        pool = self._process_pool
        pending = [
            pool.apply_async(_run_worker_job, ((worker_fn, job),))
            for job in jobs
        ]
        results: list = [None] * len(jobs)
        done = [False] * len(jobs)
        last_progress = time.monotonic()
        while not all(done):
            progressed = False
            for index, handle in enumerate(pending):
                if done[index] or not handle.ready():
                    continue
                try:
                    results[index] = handle.get()
                except Exception:
                    _obs._active.count("resilience.fallback.task")
                    results[index] = compute_serial(jobs[index])
                done[index] = True
                progressed = True
            if all(done):
                break
            if progressed:
                last_progress = time.monotonic()
                continue
            current = tuple(proc.pid for proc in pool._pool)
            if current != self._pool_pids:
                raise _PoolFailure("a pool worker died mid-round")
            if time.monotonic() - last_progress > self.task_timeout:
                raise _PoolFailure(
                    f"no task progress for {self.task_timeout:.0f}s"
                )
            time.sleep(_POLL_INTERVAL)
        return results

    def eject_masks(
        self, jobs: list[tuple], labels: np.ndarray, compute_serial
    ) -> list[np.ndarray | None]:
        """All eject masks for one round, in witness order.

        ``jobs`` are ``(direction, members, target, split_mean,
        relative)`` tuples; ``compute_serial(job)`` is the engine's
        in-process fallback (also used for thread mode, where the
        backend kernels release the GIL).  Process mode publishes the
        current labels once, then ships only members/masks.
        """
        if self.mode == "processes" and len(jobs) > 1:
            self._mirror.update("labels", labels)
        return self.run_jobs(_eject_mask_task, jobs, compute_serial)

    # -- lifecycle -------------------------------------------------------
    def release(self) -> None:
        """Shut down pools and unlink shared memory (idempotent)."""
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        self._stop_pool()
        if self._mirror is not None:
            self._mirror.close()
            self._mirror = None

    def __del__(self) -> None:  # belt and braces; release() is the API
        try:
            self.release()
        except Exception:  # pragma: no cover - interpreter teardown
            pass
