"""The partition lattice: meet and join of colorings (Sec. 2).

``meet(P, Q)`` is the greatest lower bound — classes are the nonempty
pairwise intersections.  ``join(P, Q)`` is the least upper bound — the
finest partition coarser than both, computed as connected components of the
"same class in P or same class in Q" relation via union-find.  Theorem 12(1)
relies on joins of quasi-stable colorings being quasi-stable when ``~`` is a
congruence.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import Coloring
from repro.exceptions import ColoringError


def meet(p: Coloring, q: Coloring) -> Coloring:
    """Greatest lower bound ``P ∧ Q``: intersect classes pairwise."""
    if p.n != q.n:
        raise ColoringError(f"colorings on different node sets: {p.n} vs {q.n}")
    # Pair (p-label, q-label) determines the meet class.
    paired = p.labels.astype(np.int64) * (q.n_colors + 1) + q.labels
    return Coloring(paired)


class _UnionFind:
    """Path-halving union-find over ``0..n-1``."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, x: int, y: int) -> None:
        rx, ry = self.find(x), self.find(y)
        if rx != ry:
            self.parent[ry] = rx


def join(p: Coloring, q: Coloring) -> Coloring:
    """Least upper bound ``P ∨ Q`` via union-find over both class systems."""
    if p.n != q.n:
        raise ColoringError(f"colorings on different node sets: {p.n} vs {q.n}")
    uf = _UnionFind(p.n)
    for coloring in (p, q):
        for members in coloring.classes():
            first = int(members[0])
            for node in members[1:].tolist():
                uf.union(first, node)
    roots = np.fromiter((uf.find(i) for i in range(p.n)), dtype=np.int64, count=p.n)
    return Coloring(roots)
