#!/usr/bin/env python
"""Certified-ε solves: name the error you can tolerate, get a proof.

The paper's experiments (Sec. 6) fix a color budget and report whatever
error comes out.  :func:`repro.pipeline.run_certified` inverts the
dial: the caller names a relative error ``eps``, and the pipeline grows
the color budget — one shared Rothko run, each budget a checkpoint of
the same refinement — until the error *measured against an exact solve
of the original problem* meets it.  ``certified=True`` is therefore a
direct measurement, not a bound; an unreachable dial (budget cap or
coloring saturation) degrades into the achieved (error, compression)
pair instead of an exception.

This example certifies a vision max-flow instance and a planted-block
LP at a sweep of dials, printing the compression each dial costs.

Run:  python examples/certified_solve.py
      (CLI equivalent: python -m repro solve --task maxflow
       --dataset tsukuba0 --scale 0.05 --certify 0.02)
"""

from repro.datasets.flows import vision_grid_instance
from repro.datasets.registry import load_lp
from repro.pipeline import LPTask, MaxFlowTask, run_certified
from repro.utils.tables import format_table


def certify_sweep(name: str, make_task, dials) -> None:
    rows = []
    for eps in dials:
        certified = run_certified(make_task(), eps)
        rows.append(
            [
                f"{eps:g}",
                "yes" if certified.certified else "NO",
                f"{certified.achieved_error:.4g}",
                certified.n_colors,
                f"{certified.compression_ratio:.1f}:1",
                len(certified.rounds),
            ]
        )
    headers = [
        "eps", "certified", "achieved", "colors", "compression", "rounds"
    ]
    print(format_table(headers, rows, title=f"certified {name}"))
    print()


def main() -> None:
    network = vision_grid_instance(20, 20, levels=12, seed=1)
    certify_sweep(
        "maxflow (vision grid 20x20)",
        lambda: MaxFlowTask(network),
        dials=(0.5, 0.1, 0.02),
    )

    lp = load_lp("qap15", scale=0.05)
    certify_sweep(
        "lp (qap15 @ 0.05)",
        lambda: LPTask(lp),
        dials=(0.25, 0.05, 0.01),
    )


if __name__ == "__main__":
    main()
