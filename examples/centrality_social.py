#!/usr/bin/env python
"""Approximate betweenness centrality on a social graph (Sec. 4.3).

Builds a facebook-style powerlaw-cluster graph, computes exact Brandes
betweenness, then compares two approximations across budgets:

* the paper's quasi-stable color-pivot method, and
* the Riondato-Kornaropoulos shortest-path sampler (the prior work in
  Table 1).

Run:  python examples/centrality_social.py
"""

import time

import numpy as np

from repro.centrality import (
    approx_betweenness,
    betweenness_centrality,
    riondato_kornaropoulos_betweenness,
)
from repro.datasets.registry import load_graph
from repro.utils.stats import spearman_rho, top_k_overlap
from repro.utils.tables import format_table


def main() -> None:
    graph = load_graph("facebook", scale=0.02)
    print(f"Social graph stand-in: {graph}\n")

    start = time.perf_counter()
    exact = betweenness_centrality(graph)
    exact_seconds = time.perf_counter() - start
    print(f"Exact Brandes betweenness: {exact_seconds:.2f}s\n")

    rows = []
    for budget in (10, 25, 50, 100):
        ours = approx_betweenness(graph, n_colors=budget, seed=0)
        rows.append(
            [
                f"q-color ({budget})",
                round(spearman_rho(exact, ours.scores), 3),
                round(top_k_overlap(exact, ours.scores, 10), 2),
                f"{ours.total_seconds:.2f}s",
                f"{100 * ours.total_seconds / exact_seconds:.1f}%",
            ]
        )
    for samples in (500, 2000, 8000):
        start = time.perf_counter()
        sampled = riondato_kornaropoulos_betweenness(
            graph, n_samples=samples, seed=0
        )
        seconds = time.perf_counter() - start
        rows.append(
            [
                f"RK sampling ({samples})",
                round(spearman_rho(exact, sampled), 3),
                round(top_k_overlap(exact, sampled, 10), 2),
                f"{seconds:.2f}s",
                f"{100 * seconds / exact_seconds:.1f}%",
            ]
        )
    print(format_table(
        ["method", "spearman rho", "top-10 overlap", "time", "% of exact"],
        rows,
        title="Centrality approximations vs exact Brandes",
    ))

    best = approx_betweenness(graph, n_colors=100, seed=0)
    top_exact = np.argsort(-exact)[:5]
    top_ours = np.argsort(-best.scores)[:5]
    print(
        "\nTop-5 central nodes (exact):  ", top_exact.tolist(),
        "\nTop-5 central nodes (approx): ", top_ours.tolist(),
    )


if __name__ == "__main__":
    main()
