#!/usr/bin/env python
"""The spectrum of similarity relations from Sec. 3.1, side by side.

Quasi-stable coloring is parameterized by a similarity relation ``~`` on
block weights.  This example colors one graph under every relation the
paper discusses and compares the resulting partition sizes:

* equality              -> the classic stable coloring (q = 0);
* q-absolute            -> the paper's workhorse (Rothko, Algorithm 1);
* eps-relative          -> bounded *relative* block-weight error;
* bisimulation          -> all-or-nothing connectivity between colors;
* capped congruence     -> ``min(x, c)``, interpolating bisimulation and
                           stability (Theorem 12(1): unique maximum,
                           computable exactly in PTIME).

Run:  python examples/similarity_spectrum.py
"""

from repro.core.qerror import max_q_err
from repro.core.refinement import congruence_coloring, stable_coloring
from repro.core.rothko import eps_color, q_color
from repro.core.similarity import Bisimulation, CappedCongruence
from repro.datasets.registry import load_graph
from repro.utils.tables import format_table


def main() -> None:
    graph = load_graph("openflights", scale=0.2)
    adjacency = graph.to_csr()
    n = graph.n_nodes
    print(f"Graph: {graph}\n")

    rows = []

    stable = stable_coloring(adjacency)
    rows.append(
        ["equality (stable, exact)", stable.n_colors,
         f"{n / stable.n_colors:.1f}:1", 0.0]
    )

    bisim = congruence_coloring(adjacency, Bisimulation())
    rows.append(
        ["bisimulation (exact max)", bisim.n_colors,
         f"{n / bisim.n_colors:.1f}:1", "-"]
    )

    for cap in (1.0, 4.0):
        capped = congruence_coloring(adjacency, CappedCongruence(cap))
        rows.append(
            [f"capped congruence c={cap:g} (exact max)", capped.n_colors,
             f"{n / capped.n_colors:.1f}:1", "-"]
        )

    for q in (16.0, 4.0, 1.0):
        result = q_color(adjacency, q=q, n_colors=n)
        rows.append(
            [f"q-absolute q<={q:g} (Rothko)", result.n_colors,
             f"{n / result.n_colors:.1f}:1", result.max_q_err]
        )

    for eps in (1.0, 0.5):
        result = eps_color(adjacency, eps=eps, n_colors=n)
        rows.append(
            [f"eps-relative eps<={eps:g} (Rothko)", result.n_colors,
             f"{n / result.n_colors:.1f}:1",
             max_q_err(adjacency, result.coloring)]
        )

    print(format_table(
        ["relation", "colors", "compression", "achieved max q"],
        rows,
        title="One graph, six similarity relations",
    ))
    print(
        "\nTakeaways: exact relations (equality) barely compress; "
        "congruences admit\nexact maxima but are coarse-grained; the "
        "q-absolute and eps-relative knobs\ntrade error for compression "
        "continuously — the paper's core proposal."
    )


if __name__ == "__main__":
    main()
