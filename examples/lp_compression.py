#!/usr/bin/env python
"""Compressing linear programs with quasi-stable coloring (Sec. 4.1).

Part 1 walks through the paper's worked example (Fig. 3): a 5x3 LP whose
extended matrix admits a q = 1 block coloring; the reduced 2x2 LP's
optimum (130.199) approximates the true optimum (128.157).

Part 2 runs the pipeline on a QAP-style instance (the family behind the
paper's qap15/nug08 benchmarks) and prints a Table 5-style compression
report.

Run:  python examples/lp_compression.py
"""

from repro.core.partition import Coloring
from repro.lp.generators import fig3_example, qap_like
from repro.lp.reduction import approx_lp_opt, reduce_lp
from repro.lp.solve import solve_lp
from repro.utils.stats import ratio_error
from repro.utils.tables import format_table


def part1_worked_example() -> None:
    lp = fig3_example()
    exact = solve_lp(lp).objective
    print(f"Fig. 3 LP ({lp.n_rows}x{lp.n_cols}): exact OPT = {exact:.3f}")

    # The paper's manual block partition: rows {1,2,3} {4,5}, cols {1,2} {3},
    # with the objective row and RHS column pinned as singletons.
    row_coloring = Coloring([0, 0, 0, 1, 1, 2])
    col_coloring = Coloring([0, 0, 1, 2])
    reduction = reduce_lp(lp, coloring=(row_coloring, col_coloring))
    reduced_opt = solve_lp(reduction.reduced).objective
    print(
        f"Reduced {reduction.reduced.n_rows}x{reduction.reduced.n_cols} LP "
        f"(q = {reduction.max_q_err:.0f} coloring): OPT = {reduced_opt:.3f} "
        f"(paper: 130.199)\n"
    )
    print("Reduced constraint matrix A_hat (Eq. 6):")
    print(reduction.reduced.a_matrix.toarray().round(3), "\n")


def part2_qap_pipeline() -> None:
    lp = qap_like(size=10, seed=4)
    exact = solve_lp(lp)
    print(
        f"QAP-style LP: {lp.n_rows} rows x {lp.n_cols} cols, "
        f"{lp.nnz} nonzeros; exact OPT = {exact.objective:.2f} "
        f"({exact.elapsed:.2f}s)\n"
    )
    rows = []
    for budget in (8, 16, 32, 64):
        result = approx_lp_opt(lp, n_colors=budget)
        reduced = result.reduction.reduced
        rows.append(
            [
                budget,
                f"{reduced.n_rows}x{reduced.n_cols}",
                reduced.nnz,
                f"{lp.nnz / max(reduced.nnz, 1):.0f}x",
                round(result.value, 2),
                round(ratio_error(exact.objective, result.value), 3),
                f"{result.total_seconds:.3f}s",
            ]
        )
    print(format_table(
        ["colors", "reduced size", "nnz", "compression", "approx OPT",
         "ratio error", "time"],
        rows,
        title="Table 5-style compression report (qap-like instance)",
    ))

    # Lifted solutions: a reduced optimum pulled back to original space.
    result = approx_lp_opt(lp, n_colors=64)
    lifted = result.x_lifted
    print(
        f"\nLifted solution: objective {lp.objective(lifted):.2f}, "
        f"feasible = {lp.is_feasible(lifted, tol=1e-6)} "
        "(feasibility is exact when the coloring is stable; approximate "
        "otherwise — Theorem 2)"
    )


if __name__ == "__main__":
    part1_worked_example()
    part2_qap_pipeline()
