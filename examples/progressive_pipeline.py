#!/usr/bin/env python
"""One coloring serving all three applications across a k-schedule.

The unified pipeline (``repro.pipeline``) treats max-flow, LPs, and
betweenness centrality as one compress–solve–lift pattern.  This example
runs all three tasks through a single :class:`ColoringCache` over a
shared schedule of color budgets:

* each task's Rothko engine colors **once**, progressively — every
  budget in the schedule is a checkpoint of the same run, with the
  block-weight matrix ``W = S^T A S`` patched incrementally per split
  instead of rebuilt per budget;
* variants of the same task (max-flow upper *and* lower bounds, LP
  ``sqrt`` *and* ``grohe`` weight modes) hit the cache and share the
  coloring outright.

Run:  python examples/progressive_pipeline.py
"""

from repro.centrality.brandes import betweenness_centrality
from repro.datasets.flows import vision_grid_instance
from repro.datasets.registry import load_graph, load_lp
from repro.flow.network import max_flow
from repro.lp.solve import solve_lp
from repro.pipeline import (
    CentralityTask,
    ColoringCache,
    LPTask,
    MaxFlowTask,
    progressive_sweep,
    run_task,
)
from repro.utils.stats import ratio_error, spearman_rho
from repro.utils.tables import format_table

SCHEDULE = (4, 6, 8, 12, 16, 24, 32, 48)


def main() -> None:
    cache = ColoringCache()

    # --- the three problems -------------------------------------------
    network = vision_grid_instance(20, 20, levels=12, seed=1)
    lp = load_lp("qap15", scale=0.05)
    graph = load_graph("deezer", scale=0.006)

    exact_flow = max_flow(network).value
    exact_opt = solve_lp(lp).objective
    exact_scores = betweenness_centrality(graph)

    # --- one progressive sweep per task, one shared cache -------------
    sweeps = {
        "maxflow": progressive_sweep(
            MaxFlowTask(network), SCHEDULE, cache=cache
        ),
        "lp": progressive_sweep(
            LPTask(lp), [max(6, k) for k in SCHEDULE], cache=cache
        ),
        "centrality": progressive_sweep(
            CentralityTask(graph, seed=0), SCHEDULE, cache=cache
        ),
    }

    rows = []
    for budget, flow_r, lp_r, cen_r in zip(
        SCHEDULE, sweeps["maxflow"], sweeps["lp"], sweeps["centrality"]
    ):
        rows.append(
            [
                budget,
                f"{ratio_error(exact_flow, flow_r.value):.3f}",
                f"{ratio_error(exact_opt, lp_r.value):.3f}",
                f"{spearman_rho(exact_scores, cen_r.lifted):.3f}",
            ]
        )
    print(format_table(
        ["colors", "flow ratio err", "LP ratio err", "centrality rho"],
        rows,
        title="One progressive coloring per task, solutions at every "
        "checkpoint",
    ))
    print(
        f"\nColoring runs so far: {len(cache)} (one per task) for "
        f"{sum(len(s) for s in sweeps.values())} solved checkpoints; "
        f"cache hits {cache.hits}, misses {cache.misses}."
    )

    # --- variants reuse the same coloring run -------------------------
    lower = run_task(
        MaxFlowTask(network, bound="lower"), n_colors=SCHEDULE[-1],
        cache=cache,
    )
    grohe = run_task(
        LPTask(lp, mode="grohe"), n_colors=max(6, SCHEDULE[-1]), cache=cache,
    )
    print(
        f"\nTheorem 6 sandwich at {SCHEDULE[-1]} colors (same coloring, "
        f"zero new Rothko work):\n"
        f"  maxFlow(G_hat_1) = {lower.value:.1f} <= maxFlow(G) = "
        f"{exact_flow:.1f} <= maxFlow(G_hat_2) = "
        f"{sweeps['maxflow'][-1].value:.1f}"
    )
    print(
        f"Grohe-mode LP optimum from the cached coloring: "
        f"{grohe.value:.2f} (exact {exact_opt:.2f})"
    )
    print(
        f"\nStill {len(cache)} coloring runs after the variants "
        f"(cache hits {cache.hits})."
    )


if __name__ == "__main__":
    main()
