#!/usr/bin/env python
"""Rothko as an anytime co-routine (Sec. 5.2, Table 6).

Rothko refines one color per step and can be interrupted at any point
with a valid coloring in hand.  This example drives the generator
interface directly, re-solving the downstream max-flow approximation
after every split and printing the approximation as it converges —
exactly the interactive pattern Table 6 measures.

Run:  python examples/progressive_coloring.py
"""

import numpy as np

from repro.core.partition import Coloring
from repro.core.rothko import Rothko
from repro.datasets.flows import vision_grid_instance
from repro.flow.approx import reduced_network
from repro.flow.network import max_flow
from repro.utils.tables import format_table


def main() -> None:
    network = vision_grid_instance(16, 16, levels=10, seed=1)
    exact = max_flow(network, algorithm="push_relabel").value
    print(
        f"Instance: {network.graph.n_nodes} nodes; exact max-flow "
        f"{exact:.1f}\n"
    )

    labels = np.full(network.graph.n_nodes, 2, dtype=np.int64)
    labels[network.source_index] = 0
    labels[network.sink_index] = 1
    initial = Coloring(labels)
    frozen = (
        initial.color_of(network.source_index),
        initial.color_of(network.sink_index),
    )
    engine = Rothko(network.graph, initial=initial, frozen=frozen)

    rows = []
    for step in engine.steps(max_colors=24):
        reduced = reduced_network(network, step.coloring, bound="upper")
        approx = max_flow(reduced, algorithm="dinic").value
        rows.append(
            [
                step.iteration,
                step.n_colors,
                round(step.q_err_before, 1),
                round(approx, 1),
                f"{approx / exact:.3f}",
                f"{step.elapsed * 1000:.0f}ms",
            ]
        )
        if approx / exact < 1.02:
            print("Converged within 2% — interrupting the co-routine.\n")
            break

    print(format_table(
        ["step", "colors", "q before split", "approx flow",
         "approx/exact", "elapsed"],
        rows,
        title="Anytime refinement: the approximation tightens per split",
    ))
    print(
        "\nThe loop can be stopped at any row; the coloring is always "
        "valid (Table 6's responsiveness pattern)."
    )


if __name__ == "__main__":
    main()
