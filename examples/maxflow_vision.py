#!/usr/bin/env python
"""Approximate max-flow on a vision-style grid network (Sec. 4.2).

Builds a BK-style stereo instance (the structure of the paper's Tsukuba/
Venus benchmarks), solves it exactly with push-relabel, then sweeps the
quasi-stable approximation across color budgets — the Fig. 7(a)
experiment at example scale.  Also demonstrates the Theorem 6 sandwich
``maxFlow(G_hat_1) <= maxFlow(G) <= maxFlow(G_hat_2)``.

Run:  python examples/maxflow_vision.py
"""

import time

from repro.datasets.flows import vision_grid_instance
from repro.flow.approx import approx_max_flow, color_flow_network, reduced_network
from repro.flow.network import max_flow
from repro.utils.stats import ratio_error
from repro.utils.tables import format_table


def main() -> None:
    network = vision_grid_instance(24, 24, levels=12, seed=3)
    graph = network.graph
    print(
        f"Vision grid instance: {graph.n_nodes} nodes, "
        f"{graph.n_arcs} arcs\n"
    )

    start = time.perf_counter()
    exact = max_flow(network, algorithm="push_relabel")
    exact_seconds = time.perf_counter() - start
    print(
        f"Exact max-flow (push-relabel): {exact.value:.1f} "
        f"in {exact_seconds:.2f}s\n"
    )

    rows = []
    for budget in (4, 8, 16, 32, 64):
        result = approx_max_flow(network, n_colors=budget)
        rows.append(
            [
                budget,
                result.n_colors,
                round(result.value, 1),
                round(ratio_error(exact.value, result.value), 3),
                f"{result.total_seconds:.3f}s",
                f"{100 * result.total_seconds / exact_seconds:.1f}%",
            ]
        )
    print(format_table(
        ["budget", "colors", "approx flow", "ratio error", "time",
         "% of exact time"],
        rows,
        title="Fig. 7(a)-style sweep: accuracy vs color budget",
    ))

    # --- the Theorem 6 sandwich ------------------------------------------
    rothko = color_flow_network(network, n_colors=16)
    upper = max_flow(reduced_network(network, rothko.coloring, "upper")).value
    lower = max_flow(reduced_network(network, rothko.coloring, "lower")).value
    print(
        f"\nTheorem 6 sandwich at 16 colors:\n"
        f"  maxFlow(G_hat_1) = {lower:8.1f}   (uniform-flow capacities)\n"
        f"  maxFlow(G)       = {exact.value:8.1f}\n"
        f"  maxFlow(G_hat_2) = {upper:8.1f}   (block-sum capacities)"
    )
    assert lower - 1e-6 <= exact.value <= upper + 1e-6


if __name__ == "__main__":
    main()
