#!/usr/bin/env python
"""Quickstart: quasi-stable coloring in five minutes.

Reproduces the paper's Fig. 1 on Zachary's karate club: the exact stable
coloring needs 27 colors (barely compressing the 34-node graph), while a
q = 3 quasi-stable coloring needs only 6.  Then shows the reduced graph
and the quality/size trade-off as q varies.

Run:  python examples/quickstart.py
"""

from repro import q_color, reduced_graph, stable_coloring
from repro.core.qerror import q_error_report
from repro.graphs.generators import karate_club
from repro.utils.tables import format_table


def main() -> None:
    graph = karate_club()
    print(f"Graph: {graph}\n")

    # --- exact stable coloring (1-WL fixpoint) --------------------------
    stable = stable_coloring(graph.to_csr())
    print(
        f"Stable coloring: {stable.n_colors} colors "
        f"(compression {graph.n_nodes / stable.n_colors:.2f}:1) — "
        "barely smaller than the graph itself."
    )

    # --- quasi-stable coloring (Rothko, Algorithm 1) ---------------------
    result = q_color(graph, n_colors=6)
    print(
        f"Quasi-stable coloring: {result.n_colors} colors with "
        f"max q-error {result.max_q_err:.0f} "
        f"(compression {graph.n_nodes / result.n_colors:.1f}:1).\n"
    )

    # The club leaders (nodes 1 and 34) get their own color in the paper's
    # figure; check where ours puts them.
    leaders = [graph.index_of(1), graph.index_of(34)]
    labels = result.coloring.labels
    print(
        "Color classes (node labels):",
    )
    for color, members in enumerate(result.coloring.classes()):
        names = [graph.label_of(i) for i in members]
        marker = " <- club leaders" if set(leaders) & set(members) else ""
        print(f"  color {color}: {names}{marker}")

    # --- the reduced graph ------------------------------------------------
    reduced = reduced_graph(graph, result.coloring, mode="sum")
    print(
        f"\nReduced graph: {reduced.n_nodes} nodes, {reduced.n_edges} "
        "weighted edges (block total weights)."
    )

    # --- the q vs size trade-off -----------------------------------------
    rows = []
    for budget in (2, 4, 6, 10, 15, 20, 27):
        sweep = q_color(graph, n_colors=budget)
        report = q_error_report(graph.to_csr(), sweep.coloring)
        rows.append(
            [budget, sweep.n_colors, report.max_q, round(report.mean_q, 2)]
        )
    print("\n" + format_table(
        ["budget", "colors", "max q", "mean q"],
        rows,
        title="Trade-off: more colors -> smaller q-error",
    ))


if __name__ == "__main__":
    main()
