#!/usr/bin/env python
"""Out-of-core coloring: ingest a graph to disk, color it memmapped.

Walks the edge-store pipeline end to end on a million-arc synthetic
digraph: stream the arcs into a memmapped store, open the graph with
``from_edgestore`` (no resident arrays), color it, and verify the
labels are bit-identical to a fully resident run.  tracemalloc shows
the punchline — the out-of-core run's Python heap never holds the
graph.

Run:  python examples/outofcore_coloring.py
"""

import tempfile
import tracemalloc
from pathlib import Path

import numpy as np

from repro.core.rothko import Rothko
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.edgestore import ingest_uniform_random

N_NODES = 250_000
OUT_DEGREE = 4
BUDGET = 64


def traced(label, fn):
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    print(f"{label}: traced peak {peak / 1e6:.1f} MB")
    return result


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "store"

        # --- 1. stream the graph onto disk ---------------------------
        store = ingest_uniform_random(
            store_path, N_NODES, OUT_DEGREE, seed=7
        )
        print(
            f"Store: {store.n_nodes:,} nodes, {store.n_arcs:,} arcs, "
            f"{store.array_nbytes() / 1e6:.1f} MB on disk "
            f"({store.index_dtype} indices)"
        )

        # --- 2. color straight off the files -------------------------
        mmap_graph = WeightedDiGraph.from_edgestore(store, mmap=True)
        mmap_result = traced(
            "out-of-core coloring",
            lambda: Rothko(mmap_graph).run(max_colors=BUDGET),
        )

        # --- 3. same run, fully resident -----------------------------
        indptr, indices, data = store.csr_arrays(mmap=False)
        resident = WeightedDiGraph.from_arrays(
            np.repeat(
                np.arange(store.n_nodes, dtype=np.int64),
                np.diff(indptr),
            ),
            indices.astype(np.int64),
            data,
            n_nodes=store.n_nodes,
        )
        resident_result = traced(
            "resident coloring",
            lambda: Rothko(resident).run(max_colors=BUDGET),
        )

        # --- 4. the mmap path is an I/O strategy, not an approximation
        assert np.array_equal(
            mmap_result.coloring.labels,
            resident_result.coloring.labels,
        )
        print(
            f"Bit-identical colorings: {mmap_result.n_colors} colors, "
            f"max q-error {mmap_result.max_q_err:.3f} "
            f"(compression {store.n_nodes / mmap_result.n_colors:.0f}:1)"
        )


if __name__ == "__main__":
    main()
