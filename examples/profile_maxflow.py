#!/usr/bin/env python
"""Profile a compress–solve–lift max-flow run with the obs subsystem.

The worked ``repro profile`` example: run the max-flow pipeline under a
recorder, print the per-span summary (where did the time go — coloring,
reduce, solve, lift?), inspect the engine counters, and dump the whole
trace as JSONL.  The same profile is available from the command line:

    python -m repro profile solve --task maxflow --dataset tsukuba0 \\
        --scale 0.002 --colors 32 --trace-out trace.jsonl

Run:  python examples/profile_maxflow.py
"""

import io
import json

from repro import obs
from repro.datasets.registry import load_flow
from repro.pipeline import MaxFlowTask, progressive_sweep


def main() -> None:
    network = load_flow("tsukuba0", scale=0.002)
    print(f"Flow network: {network}\n")

    # Everything inside the recording() scope is traced; outside it the
    # same instrumentation routes to a null recorder and costs nothing.
    with obs.recording() as recorder:
        with obs.trace.span("example.profile_maxflow"):
            results = progressive_sweep(MaxFlowTask(network), (8, 16, 32))

    for result in results:
        print(
            f"  k={result.n_colors:>3}  max_q={result.max_q_err:8.3f}  "
            f"flow={result.value:10.1f}  total={result.total_seconds:.3f}s"
        )
    print()

    # Per-span-name aggregates: count / total wall / p50 / p99 / CPU.
    print(obs.render_summary(recorder, title="max-flow pipeline profile"))
    print()

    # The counters answer "what did the engines actually do".
    counters = recorder.snapshot()["counters"]
    for name in (
        "rothko.splits",
        "kernels.bincount_cells",
        "solvers.pr.relabels",
        "pipeline.cache.miss",
        "pipeline.cache.hit",
    ):
        print(f"  {name:24} = {counters.get(name, 0):g}")
    print()

    # The JSONL dump is what --trace-out writes; every line is one JSON
    # object (a meta header, then spans and metrics).
    buffer = io.StringIO()
    lines = obs.write_jsonl(recorder, buffer)
    first_span = next(
        json.loads(line)
        for line in buffer.getvalue().splitlines()
        if json.loads(line)["type"] == "span"
    )
    print(f"JSONL trace: {lines} lines; first span record:")
    print(f"  {json.dumps(first_span)[:120]}...")

    # The root span accounts for (essentially) the whole run.
    root_wall, coverage = obs.root_coverage(recorder.spans)
    print(
        f"root span wall {root_wall:.3f}s, {coverage:.0%} covered by "
        f"direct children"
    )
    assert coverage > 0.9


if __name__ == "__main__":
    main()
