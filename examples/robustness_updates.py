#!/usr/bin/env python
"""Robustness of colorings to graph updates (Fig. 2 / Sec. 6.3).

Stable coloring is brittle: one added edge can cascade refinements until
most nodes sit in singleton colors.  Quasi-stable colorings tolerate
bounded degree differences, so the color count barely moves.  This
example perturbs the planted-partition graph edge by edge and prints
both trajectories.

Run:  python examples/robustness_updates.py
"""

from repro.experiments.fig2_robustness import run_fig2
from repro.utils.tables import format_table


def main() -> None:
    fractions = (0.0, 0.0025, 0.005, 0.0075, 0.01, 0.0125, 0.015)
    rows = run_fig2(fractions=fractions)
    table = [
        [
            row["edges_added"],
            f"{100 * row['fraction']:.2f}%",
            row["stable_colors"],
            f"{row['stable_compression']:.2f}:1",
            row["qstable_colors"],
            f"{row['qstable_compression']:.2f}:1",
        ]
        for row in rows
    ]
    print(format_table(
        ["edges added", "fraction", "stable colors", "stable compr.",
         "q=4 colors", "q=4 compr."],
        table,
        title="Fig. 2: |V|=1000, |E|=21600 planted graph under perturbation",
    ))
    print(
        "\nStable coloring collapses to (near-)singleton colors almost "
        "immediately;\nthe q-stable coloring absorbs the noise — the "
        "paper's Fig. 2 in table form."
    )


if __name__ == "__main__":
    main()
