#!/usr/bin/env python
"""Maintain a quasi-stable coloring while the graph streams updates.

The static Rothko engine recolors from scratch; under a stream of edge
changes that cost is paid per update.  `DynamicColoring` instead patches
its degree matrices in O(1) per arc event, re-checks only the touched
color pairs, and splits/merges locally — falling back to a full
recoloring only past a drift budget.  This example replays a hub-churn
trace on the OpenFlights stand-in and prints the running repair stats.

Run:  python examples/streaming_maintenance.py
"""

import time

from repro.core.qerror import max_q_err
from repro.core.rothko import q_color
from repro.datasets.churn import churn_scenario
from repro.datasets.registry import load_graph
from repro.dynamic import DynamicColoring


def main() -> None:
    graph = load_graph("openflights", scale=0.06)
    seeded = q_color(graph, n_colors=40)
    tolerance = seeded.max_q_err
    print(
        f"seed: {graph.n_nodes} nodes, {graph.n_edges} edges, "
        f"{seeded.n_colors} colors, q = {tolerance:g}"
    )

    dynamic = DynamicColoring(graph, q_tolerance=tolerance, coloring=seeded.coloring)
    trace = churn_scenario("hub", graph, n_updates=100, seed=5)

    start = time.perf_counter()
    for index, update in enumerate(trace, start=1):
        dynamic.apply(update)
        if index % 20 == 0:
            snapshot = dynamic.snapshot()
            print(
                f"after {index:3d} updates: {snapshot.n_colors} colors, "
                f"max_q = {max_q_err(graph.to_csr(), snapshot):.3f}, "
                f"splits = {dynamic.stats.splits}, "
                f"merges = {dynamic.stats.merges}, "
                f"rebuilds = {dynamic.stats.rebuilds}"
            )
    elapsed = time.perf_counter() - start
    dynamic.detach()

    per_update_ms = 1e3 * elapsed / len(trace)
    scratch_start = time.perf_counter()
    q_color(graph, q=tolerance)
    scratch_ms = 1e3 * (time.perf_counter() - scratch_start)
    print(
        f"\nmean repair: {per_update_ms:.2f} ms/update vs "
        f"{scratch_ms:.1f} ms per from-scratch recoloring "
        f"(work ratio {per_update_ms / scratch_ms:.3f})"
    )


if __name__ == "__main__":
    main()
