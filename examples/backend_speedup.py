#!/usr/bin/env python
"""Kernel backend dispatch: time every installed backend on one workload.

The coloring engine's hot kernels dispatch through
``repro.core.backends``: numpy is the always-available reference, and
numba / torch backends are picked up automatically when installed (or
explicitly via ``Rothko(backend=...)`` / ``REPRO_BACKEND``).  All CPU
backends are bit-identical, so switching one in changes wall-clock and
nothing else.

This example colors a mid-size random digraph once per available
backend — plus a parallel batched-round run (``workers=cores``) — and
prints the timing table with speedups over the numpy reference.  The
solver tier rides the same dispatch, so a second leg times Dinic
max-flow and batched Brandes betweenness per backend (plus a
source-batched parallel Brandes run), asserting along the way that
every backend reproduces the numpy/serial reference.  On a machine
without numba/torch it degrades to the numpy rows alone.

Run:  python examples/backend_speedup.py
"""

import os
import time

import numpy as np

from repro.centrality.brandes import betweenness_centrality
from repro.core.backends import available_backends, resolve_backend
from repro.core.rothko import Rothko
from repro.flow.network import FlowNetwork, max_flow
from repro.graphs.generators import uniform_random_digraph
from repro.utils.tables import format_table

N_NODES = 50_000
OUT_DEGREE = 4
BUDGET = 64
# Solver-leg workloads: sized so full Dinic / all-sources Brandes stay
# example-friendly while the Brandes source lanes still span several
# batches (the unit of the parallel fan-out).
FLOW_NODES = 20_000
BRANDES_NODES = 2_500


def timed_run(adjacency, **kwargs):
    engine = Rothko(adjacency, **kwargs)
    start = time.perf_counter()
    result = engine.run(max_colors=BUDGET)
    return result, time.perf_counter() - start


def main() -> None:
    adjacency = uniform_random_digraph(
        N_NODES, OUT_DEGREE, seed=7
    ).to_csr()
    cores = os.cpu_count() or 1
    backends = available_backends()
    print(
        f"Graph: {N_NODES} nodes, {adjacency.nnz} arcs; budget {BUDGET} "
        f"colors; {cores} core(s); installed backends: "
        f"{', '.join(backends)}\n"
    )

    reference, numpy_seconds = timed_run(adjacency, backend="numpy")
    rows = [["numpy", "greedy", 1, f"{numpy_seconds:.2f}s", "1.00x"]]

    for name in backends:
        if name == "numpy":
            continue
        backend = resolve_backend(name)
        # One throwaway run first: numba JIT-compiles on first call.
        timed_run(adjacency, backend=backend)
        result, seconds = timed_run(adjacency, backend=backend)
        assert np.array_equal(
            result.coloring.labels, reference.coloring.labels
        ), f"{name} diverged from the numpy reference"
        rows.append([
            name, "greedy", 1, f"{seconds:.2f}s",
            f"{numpy_seconds / seconds:.2f}x",
        ])

    # Parallel batched rounds: the top-B disjoint splits of each round
    # fan across workers; results are bit-for-bit sequential-identical.
    sequential, seq_seconds = timed_run(
        adjacency, strategy="batched", batch_size=16
    )
    parallel, par_seconds = timed_run(
        adjacency, strategy="batched", batch_size=16, workers=cores
    )
    assert np.array_equal(
        parallel.coloring.labels, sequential.coloring.labels
    ), "parallel batched rounds diverged from sequential"
    best = resolve_backend("auto")
    rows.append([
        best.name, "batched", 1, f"{seq_seconds:.2f}s",
        f"{numpy_seconds / seq_seconds:.2f}x",
    ])
    rows.append([
        best.name, "batched", cores, f"{par_seconds:.2f}s",
        f"{numpy_seconds / par_seconds:.2f}x",
    ])

    print(format_table(
        ["backend", "strategy", "workers", "time", "vs numpy greedy"],
        rows,
        title="One coloring, identical labels, different engines",
    ))
    print(
        "\nEvery row produced the same coloring — backends and the "
        "round fan-out change wall-clock only.  Install numba or torch "
        "(or run on a multi-core box) to see the accelerated rows pull "
        "ahead.\n"
    )
    solver_leg(cores, backends)


def solver_leg(cores: int, backends: list[str]) -> None:
    """Time Dinic and Brandes through the same dispatch layer."""
    network = FlowNetwork(
        uniform_random_digraph(FLOW_NODES, OUT_DEGREE, seed=11),
        0,
        FLOW_NODES - 1,
    )
    graph = uniform_random_digraph(BRANDES_NODES, OUT_DEGREE, seed=13)
    print(
        f"Solver leg: Dinic on {FLOW_NODES} nodes, Brandes on "
        f"{BRANDES_NODES} nodes\n"
    )

    start = time.perf_counter()
    flow_reference = max_flow(network, algorithm="dinic", backend="numpy")
    flow_seconds = time.perf_counter() - start
    start = time.perf_counter()
    brandes_reference = betweenness_centrality(
        graph, backend="numpy", workers=1
    )
    brandes_seconds = time.perf_counter() - start
    rows = [
        ["dinic", "numpy", 1, f"{flow_seconds:.2f}s", "1.00x"],
        ["brandes", "numpy", 1, f"{brandes_seconds:.2f}s", "1.00x"],
    ]

    for name in backends:
        if name == "numpy":
            continue
        # Warm-up first: numba JIT-compiles each kernel on first call.
        max_flow(network, algorithm="dinic", backend=name)
        start = time.perf_counter()
        result = max_flow(network, algorithm="dinic", backend=name)
        seconds = time.perf_counter() - start
        assert np.isclose(
            result.value, flow_reference.value, atol=1e-9
        ), f"{name} dinic diverged from the numpy reference"
        rows.append([
            "dinic", name, 1, f"{seconds:.2f}s",
            f"{flow_seconds / seconds:.2f}x",
        ])

        betweenness_centrality(graph, backend=name, workers=1)
        start = time.perf_counter()
        scores = betweenness_centrality(graph, backend=name, workers=1)
        seconds = time.perf_counter() - start
        assert np.allclose(
            scores, brandes_reference, atol=1e-9
        ), f"{name} brandes diverged from the numpy reference"
        rows.append([
            "brandes", name, 1, f"{seconds:.2f}s",
            f"{brandes_seconds / seconds:.2f}x",
        ])

    # Source-batched parallel Brandes on the best backend: batches are
    # sized from the graph (never the worker count) and reduced in
    # submission order, so the fan-out is bit-identical to serial.
    best = resolve_backend("auto")
    serial = betweenness_centrality(graph, backend=best, workers=1)
    start = time.perf_counter()
    parallel = betweenness_centrality(graph, backend=best, workers=cores)
    seconds = time.perf_counter() - start
    assert np.array_equal(
        parallel, serial
    ), "parallel Brandes diverged from serial"
    rows.append([
        "brandes", best.name, cores, f"{seconds:.2f}s",
        f"{brandes_seconds / seconds:.2f}x",
    ])

    print(format_table(
        ["task", "backend", "workers", "time", "vs numpy serial"],
        rows,
        title="Same flows and centralities, different solver kernels",
    ))
    print(
        "\nThe solver tier dispatches through the identical backend "
        "layer: flow values, cuts, and betweenness vectors match the "
        "numpy/serial reference to 1e-9 on every backend and worker "
        "count."
    )


if __name__ == "__main__":
    main()
